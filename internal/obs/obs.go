// Package obs is the kernel-wide observability layer: one Probe contract
// that every simulation kernel in this repository (sequential DES, barrier
// and null-message PDES, Unison live + hybrid, the virtual testbed, and
// the distributed coordinator/hosts) reports into, a Registry that
// captures per-round records into per-worker ring buffers without
// allocating on the round path, a Chrome/Perfetto trace-event exporter
// (perfetto.go), and expvar publishing (expvar.go).
//
// Determinism rules (pinned by the equivalence tests):
//
//   - A probe only observes. Kernels never branch on probe output, so a
//     probed run is bit-identical to an unprobed run.
//   - Kernels emit records once per synchronization round per worker,
//     never per event; a disabled probe costs one predictable nil-check
//     branch on the round path and nothing on the event path.
//   - Wall-clock fields (ProcNS, SyncNS, MsgNS, AllReduceNS) vary between
//     live runs; the structural fields (Round, LBTS, per-round aggregate
//     Events) are deterministic for deterministic kernels, and every
//     field is deterministic under the virtual testbed.
package obs

import (
	"sort"
	"sync"
	"unsafe"

	"unison/internal/sim"
)

// EventBytes is the in-memory size of one scheduled event; kernels report
// mailbox byte counts as events x EventBytes.
const EventBytes = uint64(unsafe.Sizeof(sim.Event{}))

// RunMeta identifies one kernel run to the probe.
type RunMeta struct {
	// Kernel is the kernel's Name().
	Kernel string `json:"kernel"`
	// Workers is the number of telemetry streams the run will emit
	// (threads for Unison, ranks for the PDES baselines, 1 for the
	// sequential kernel and each distributed endpoint).
	Workers int `json:"workers"`
	// LPs is the number of logical processes (0 when not applicable).
	LPs int `json:"lps"`
}

// RoundRecord is one worker's view of one synchronization round. For
// kernels without global rounds (null-message, the distributed host) Round
// counts that worker's local iterations instead.
type RoundRecord struct {
	// Round is the round index, starting at 0.
	Round uint64 `json:"round"`
	// Worker is the emitting worker/rank.
	Worker int32 `json:"worker"`
	// LBTS is the upper bound of the simulated-time window the round
	// processed (the safe bound for null-message ranks).
	LBTS sim.Time `json:"lbts"`
	// Events is the number of events this worker executed in the round.
	Events uint64 `json:"events"`
	// ProcNS, SyncNS, MsgNS are the round's T = P + S + M decomposition
	// for this worker (wall nanoseconds live, virtual under vtime).
	ProcNS int64 `json:"proc_ns"`
	SyncNS int64 `json:"sync_ns"`
	MsgNS  int64 `json:"msg_ns"`
	// WaitGlobalNS is the portion of SyncNS spent at the post-processing
	// barrier (phase 2, global-event handling); the remainder is the
	// window-advance barrier (phase 4).
	WaitGlobalNS int64 `json:"wait_global_ns"`
	// Sends counts cross-LP events this worker staged for other LPs
	// during the round; SendBytes is Sends x EventBytes.
	Sends     uint64 `json:"mailbox_sends"`
	SendBytes uint64 `json:"mailbox_bytes"`
	// Recvs counts cross-LP events delivered into this worker's LPs in
	// the receive phase.
	Recvs uint64 `json:"mailbox_recvs"`
	// FELDepth is the total number of pending events in the FELs this
	// worker drained mailboxes for, measured after the receive phase.
	FELDepth uint64 `json:"fel_depth"`
	// Migrations counts LPs this worker executed that ran on a different
	// worker in the previous round (the load-adaptive scheduler at work).
	Migrations uint64 `json:"migrations"`
	// AllReduceNS is the distributed window all-reduce latency observed
	// this round (coordinator: gather time; host: wait for the window
	// broadcast). Zero for in-process kernels.
	AllReduceNS int64 `json:"allreduce_ns,omitempty"`
	// Retries counts transport retries behind this record (currently the
	// distributed host's extra coordinator dial attempts, reported once
	// on its first record).
	Retries uint64 `json:"retries,omitempty"`
	// CkptNS and CkptBytes report a checkpoint taken at the end of this
	// round: wall time spent serializing and writing the snapshot, and
	// the snapshot file size. Zero when no checkpoint was taken.
	CkptNS    int64  `json:"ckpt_ns,omitempty"`
	CkptBytes uint64 `json:"ckpt_bytes,omitempty"`
}

// Probe receives telemetry from a running kernel.
//
// Call discipline (every kernel follows it):
//
//   - BeginRun once, before any worker starts.
//   - OnRound concurrently from worker goroutines, but records with the
//     same Worker value are emitted sequentially by one goroutine at a
//     time. The record pointed to is only valid during the call;
//     implementations must copy it.
//   - EndRun once, after every worker has finished, with the run's final
//     stats.
//
// Implementations must not retain the *RoundRecord and must not block:
// probe cost lands in the worker's measured round time.
type Probe interface {
	BeginRun(meta RunMeta)
	OnRound(rec *RoundRecord)
	EndRun(st *sim.RunStats)
}

// Emit sends rec to p if p is non-nil — the single predictable branch a
// disabled probe costs on the round path.
func Emit(p Probe, rec *RoundRecord) {
	if p != nil {
		p.OnRound(rec)
	}
}

// Begin forwards BeginRun to p if p is non-nil.
func Begin(p Probe, meta RunMeta) {
	if p != nil {
		p.BeginRun(meta)
	}
}

// End forwards EndRun to p if p is non-nil.
func End(p Probe, st *sim.RunStats) {
	if p != nil && st != nil {
		p.EndRun(st)
	}
}

// DefaultRingCapacity is the per-worker record capacity a zero-config
// Registry uses; older records are overwritten once a worker exceeds it.
const DefaultRingCapacity = 8192

// workerRing is one worker's record stream: a fixed-capacity ring plus
// running totals for gauge snapshots. Each ring has its own lock, taken
// once per round by its single writer, so workers never contend.
type workerRing struct {
	mu      sync.Mutex
	buf     []RoundRecord
	written uint64 // total records ever written; buf[(written-1)%cap] is newest
	rounds  uint64
	events  uint64
	procNS  int64
	syncNS  int64
	msgNS   int64
	lastLB  sim.Time
	_       [64]byte // keep neighbouring rings' hot fields off one cache line
}

// Registry is the standard Probe: it captures records into per-worker
// rings and serves merged views, Perfetto exports, and expvar snapshots.
// A Registry records one run at a time; BeginRun resets it, so the same
// Registry can observe a sequence of runs (keeping the last).
type Registry struct {
	capacity int

	mu      sync.Mutex // guards meta/final/rings slice identity
	meta    RunMeta
	final   *sim.RunStats
	rings   []*workerRing
	dropped uint64 // records addressed to out-of-range workers
}

// NewRegistry returns a Registry keeping up to capPerWorker records per
// worker (DefaultRingCapacity when <= 0).
func NewRegistry(capPerWorker int) *Registry {
	if capPerWorker <= 0 {
		capPerWorker = DefaultRingCapacity
	}
	return &Registry{capacity: capPerWorker}
}

// BeginRun implements Probe: it resets the registry for a new run.
func (g *Registry) BeginRun(meta RunMeta) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.meta = meta
	g.final = nil
	g.dropped = 0
	n := meta.Workers
	if n < 1 {
		n = 1
	}
	g.rings = make([]*workerRing, n)
	for i := range g.rings {
		g.rings[i] = &workerRing{buf: make([]RoundRecord, 0, g.capacity)}
	}
}

// OnRound implements Probe.
func (g *Registry) OnRound(rec *RoundRecord) {
	g.mu.Lock()
	if int(rec.Worker) < 0 || int(rec.Worker) >= len(g.rings) {
		g.dropped++
		g.mu.Unlock()
		return
	}
	r := g.rings[rec.Worker]
	g.mu.Unlock()

	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, *rec)
	} else {
		r.buf[r.written%uint64(cap(r.buf))] = *rec
	}
	r.written++
	r.rounds++
	r.events += rec.Events
	r.procNS += rec.ProcNS
	r.syncNS += rec.SyncNS
	r.msgNS += rec.MsgNS
	if rec.LBTS != sim.MaxTime && rec.LBTS > r.lastLB {
		r.lastLB = rec.LBTS
	}
	r.mu.Unlock()
}

// EndRun implements Probe.
func (g *Registry) EndRun(st *sim.RunStats) {
	g.mu.Lock()
	g.final = st
	g.mu.Unlock()
}

// Meta returns the current run's metadata.
func (g *Registry) Meta() RunMeta {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.meta
}

// Final returns the finished run's stats (nil while the run is in flight).
func (g *Registry) Final() *sim.RunStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.final
}

// Records returns every retained record merged in (Round, Worker) order.
// Safe to call while a run is in flight (each ring is snapshotted under
// its lock); records a full ring has overwritten are gone.
func (g *Registry) Records() []RoundRecord {
	g.mu.Lock()
	rings := g.rings
	g.mu.Unlock()
	var out []RoundRecord
	for _, r := range rings {
		r.mu.Lock()
		if len(r.buf) < cap(r.buf) || r.written <= uint64(len(r.buf)) {
			out = append(out, r.buf...)
		} else {
			// Ring wrapped: oldest record sits at written % cap.
			start := r.written % uint64(cap(r.buf))
			out = append(out, r.buf[start:]...)
			out = append(out, r.buf[:start]...)
		}
		r.mu.Unlock()
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Round != out[j].Round {
			return out[i].Round < out[j].Round
		}
		return out[i].Worker < out[j].Worker
	})
	return out
}

// Summary is a point-in-time aggregate of the registry, shaped for JSON
// (the expvar gauge payload).
type Summary struct {
	Kernel     string  `json:"kernel"`
	Workers    int     `json:"workers"`
	LPs        int     `json:"lps"`
	Rounds     uint64  `json:"rounds"`
	Records    uint64  `json:"records"`
	Dropped    uint64  `json:"dropped"`
	Events     uint64  `json:"events"`
	ProcNS     int64   `json:"proc_ns"`
	SyncNS     int64   `json:"sync_ns"`
	MsgNS      int64   `json:"msg_ns"`
	SRatio     float64 `json:"s_ratio"`
	LastLBTSNS int64   `json:"last_lbts_ns"`
	Done       bool    `json:"done"`
}

// Snapshot aggregates the registry's counters and gauges. Safe during a
// run: each worker ring is read under its own lock.
func (g *Registry) Snapshot() Summary {
	g.mu.Lock()
	s := Summary{
		Kernel:  g.meta.Kernel,
		Workers: g.meta.Workers,
		LPs:     g.meta.LPs,
		Dropped: g.dropped,
		Done:    g.final != nil,
	}
	rings := g.rings
	g.mu.Unlock()
	var lastLB sim.Time
	var rounds uint64
	for _, r := range rings {
		r.mu.Lock()
		if r.rounds > rounds {
			rounds = r.rounds
		}
		s.Records += r.written
		s.Events += r.events
		s.ProcNS += r.procNS
		s.SyncNS += r.syncNS
		s.MsgNS += r.msgNS
		if r.lastLB > lastLB {
			lastLB = r.lastLB
		}
		r.mu.Unlock()
	}
	s.Rounds = rounds
	s.LastLBTSNS = int64(lastLB)
	if tot := s.ProcNS + s.SyncNS + s.MsgNS; tot > 0 {
		s.SRatio = float64(s.SyncNS) / float64(tot)
	}
	return s
}
