package obs

import (
	"sync"

	"unison/internal/sim"
)

// maxPendingRounds bounds the tracker's working set of partially-reported
// rounds. Workers emit records for the same round within one barrier of
// each other, so in practice a handful of rounds are in flight; the bound
// only matters for kernels whose "rounds" are local iterations (null
// message, dist hosts), where full coverage may never happen and stale
// rounds must be evicted.
const maxPendingRounds = 1024

// roundAgg accumulates one round's per-worker processing times until
// every worker has reported.
type roundAgg struct {
	seen       int
	sumP       int64
	maxP       int64
	maxWorker  int32
	migrations uint64
}

// ImbalanceTracker is a Probe computing the per-round load-imbalance
// diagnostics the load-adaptive scheduler (and ROADMAP item 3's LP
// migration) consume: for every round where all workers reported, the
// ratio max(P)/mean(P), the worker on the critical path, and migration
// counts. It composes with other probes via Tee or as a Bus inner.
//
// Like every probe it only observes; Apply stamps the result into a
// RunStats after the run so the diagnostics land in run_stats.json
// without kernels knowing the tracker exists.
type ImbalanceTracker struct {
	mu      sync.Mutex
	workers int
	pending map[uint64]*roundAgg

	covered        uint64  // rounds with full worker coverage and sumP > 0
	sumRatio       float64 // sum over covered rounds of maxP*workers/sumP
	worst          float64
	worstRnd       uint64
	worstWkr       int32
	stragglerCount map[int32]uint64 // worker -> rounds it was the max
	migrations     uint64
}

// NewImbalanceTracker returns an empty tracker; BeginRun resets it, so
// one tracker can observe a sequence of runs (keeping the last).
func NewImbalanceTracker() *ImbalanceTracker {
	return &ImbalanceTracker{}
}

// BeginRun implements Probe.
func (t *ImbalanceTracker) BeginRun(meta RunMeta) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.workers = meta.Workers
	if t.workers < 1 {
		t.workers = 1
	}
	t.pending = make(map[uint64]*roundAgg)
	t.covered = 0
	t.sumRatio = 0
	t.worst = 0
	t.worstRnd = 0
	t.worstWkr = 0
	t.stragglerCount = make(map[int32]uint64)
	t.migrations = 0
}

// OnRound implements Probe.
func (t *ImbalanceTracker) OnRound(rec *RoundRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.pending == nil {
		// OnRound without BeginRun (defensive): treat as single-worker.
		t.workers = 1
		t.pending = make(map[uint64]*roundAgg)
		t.stragglerCount = make(map[int32]uint64)
	}
	agg := t.pending[rec.Round]
	if agg == nil {
		if len(t.pending) >= maxPendingRounds {
			// Evict the oldest pending round; its coverage never
			// completed, so it contributes nothing.
			var oldest uint64
			first := true
			for r := range t.pending { //unison:ordered guarded min is order-free
				if first || r < oldest {
					oldest, first = r, false
				}
			}
			delete(t.pending, oldest)
		}
		agg = &roundAgg{maxWorker: -1}
		t.pending[rec.Round] = agg
	}
	agg.seen++
	agg.sumP += rec.ProcNS
	agg.migrations += rec.Migrations
	if rec.ProcNS > agg.maxP || agg.maxWorker < 0 {
		agg.maxP = rec.ProcNS
		agg.maxWorker = rec.Worker
	}
	if agg.seen >= t.workers {
		delete(t.pending, rec.Round)
		if agg.sumP > 0 {
			ratio := float64(agg.maxP) * float64(t.workers) / float64(agg.sumP)
			t.covered++
			t.sumRatio += ratio
			t.stragglerCount[agg.maxWorker]++
			t.migrations += agg.migrations
			if ratio > t.worst {
				t.worst = ratio
				t.worstRnd = rec.Round
				t.worstWkr = agg.maxWorker
			}
		}
	}
}

// EndRun implements Probe (no-op: results are pulled via Summary/Apply).
func (t *ImbalanceTracker) EndRun(st *sim.RunStats) {}

// Summary returns the diagnostics accumulated so far, or nil when no
// round reached full coverage. Safe to call while a run is in flight.
func (t *ImbalanceTracker) Summary() *sim.Imbalance {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.summaryLocked()
}

func (t *ImbalanceTracker) summaryLocked() *sim.Imbalance {
	if t.covered == 0 {
		return nil
	}
	im := &sim.Imbalance{
		Rounds:           t.covered,
		MeanMaxOverMean:  t.sumRatio / float64(t.covered),
		WorstMaxOverMean: t.worst,
		WorstRound:       t.worstRnd,
		WorstWorker:      t.worstWkr,
		Migrations:       t.migrations,
	}
	var bestN uint64
	best := int32(-1)
	for w, n := range t.stragglerCount { //unison:ordered lowest-id tie-break is order-free
		if n > bestN || (n == bestN && (best < 0 || w < best)) {
			best, bestN = w, n
		}
	}
	im.StragglerWorker = best
	im.StragglerShare = float64(bestN) / float64(t.covered)
	return im
}

// StragglerRounds returns, per worker index, how many covered rounds that
// worker was on the critical path. Indexes beyond the reported workers
// are zero.
func (t *ImbalanceTracker) StragglerRounds(workers int) []uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]uint64, workers)
	for w, n := range t.stragglerCount {
		if int(w) >= 0 && int(w) < workers {
			out[w] = n
		}
	}
	return out
}

// Apply stamps the tracker's diagnostics and the bus's drop counter into
// st: RunStats.Imbalance, RunStats.TelemetryDrops, and per-worker
// WorkerStats.StragglerRounds. Call after the run ends and before the
// stats are serialized. A nil tracker or st is a no-op for that part.
func (t *ImbalanceTracker) Apply(st *sim.RunStats, busDrops uint64) {
	if st == nil {
		return
	}
	st.TelemetryDrops = busDrops
	if t == nil {
		return
	}
	t.mu.Lock()
	st.Imbalance = t.summaryLocked()
	for i := range st.Workers {
		st.Workers[i].StragglerRounds = t.stragglerCount[int32(i)]
	}
	t.mu.Unlock()
}
