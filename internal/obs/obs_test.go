package obs

import (
	"bytes"
	"encoding/json"
	"expvar"
	"testing"

	"unison/internal/sim"
)

// emit pushes a minimal record for (round, worker) with e events.
func emit(g *Registry, round uint64, worker int32, e uint64) {
	g.OnRound(&RoundRecord{
		Round:  round,
		Worker: worker,
		LBTS:   sim.Time(1000 * (round + 1)),
		Events: e,
		ProcNS: 100,
		SyncNS: 40,
		MsgNS:  10,
	})
}

func TestRegistryMergeOrder(t *testing.T) {
	g := NewRegistry(16)
	g.BeginRun(RunMeta{Kernel: "test", Workers: 3, LPs: 3})
	// Emit out of worker order; rounds interleaved.
	for round := uint64(0); round < 4; round++ {
		for _, w := range []int32{2, 0, 1} {
			emit(g, round, w, uint64(w)+1)
		}
	}
	recs := g.Records()
	if len(recs) != 12 {
		t.Fatalf("got %d records, want 12", len(recs))
	}
	for i, r := range recs {
		wantRound := uint64(i / 3)
		wantWorker := int32(i % 3)
		if r.Round != wantRound || r.Worker != wantWorker {
			t.Errorf("recs[%d] = (round %d, worker %d), want (%d, %d)",
				i, r.Round, r.Worker, wantRound, wantWorker)
		}
	}
}

func TestRegistryRingWrap(t *testing.T) {
	const capacity = 8
	g := NewRegistry(capacity)
	g.BeginRun(RunMeta{Kernel: "test", Workers: 1, LPs: 1})
	const total = 20
	for round := uint64(0); round < total; round++ {
		emit(g, round, 0, 1)
	}
	recs := g.Records()
	if len(recs) != capacity {
		t.Fatalf("got %d records after wrap, want %d", len(recs), capacity)
	}
	// The ring keeps the newest `capacity` records, oldest first.
	for i, r := range recs {
		want := uint64(total - capacity + i)
		if r.Round != want {
			t.Errorf("recs[%d].Round = %d, want %d", i, r.Round, want)
		}
	}
	// Totals survive overwrites even though old records are gone.
	s := g.Snapshot()
	if s.Records != total || s.Events != total {
		t.Errorf("snapshot records=%d events=%d, want %d/%d", s.Records, s.Events, total, total)
	}
}

func TestRegistryDropsOutOfRangeWorkers(t *testing.T) {
	g := NewRegistry(4)
	g.BeginRun(RunMeta{Kernel: "test", Workers: 1, LPs: 1})
	emit(g, 0, 5, 1)  // beyond Workers
	emit(g, 0, -1, 1) // negative
	if n := len(g.Records()); n != 0 {
		t.Fatalf("got %d records, want 0", n)
	}
	if s := g.Snapshot(); s.Dropped != 2 {
		t.Fatalf("dropped = %d, want 2", s.Dropped)
	}
}

func TestRegistryBeginRunResets(t *testing.T) {
	g := NewRegistry(4)
	g.BeginRun(RunMeta{Kernel: "first", Workers: 2, LPs: 2})
	emit(g, 0, 0, 5)
	g.EndRun(&sim.RunStats{Kernel: "first", Events: 5})
	g.BeginRun(RunMeta{Kernel: "second", Workers: 1, LPs: 1})
	if n := len(g.Records()); n != 0 {
		t.Fatalf("records survived BeginRun: %d", n)
	}
	if g.Final() != nil {
		t.Fatal("final stats survived BeginRun")
	}
	if got := g.Meta().Kernel; got != "second" {
		t.Fatalf("meta.Kernel = %q, want %q", got, "second")
	}
}

// perfettoFile mirrors the Chrome trace-event JSON container for decoding.
type perfettoFile struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Args map[string]any `json:"args,omitempty"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestWritePerfettoStructure(t *testing.T) {
	g := NewRegistry(64)
	g.BeginRun(RunMeta{Kernel: "test", Workers: 2, LPs: 4})
	for round := uint64(0); round < 3; round++ {
		for w := int32(0); w < 2; w++ {
			g.OnRound(&RoundRecord{
				Round: round, Worker: w, LBTS: sim.Time(500 * (round + 1)),
				Events: 10, ProcNS: 3000, SyncNS: 1500, MsgNS: 500,
				WaitGlobalNS: 600, Sends: 2, SendBytes: 2 * EventBytes, Recvs: 2,
			})
		}
	}
	var buf bytes.Buffer
	if err := g.WritePerfetto(&buf); err != nil {
		t.Fatalf("WritePerfetto: %v", err)
	}

	var tf perfettoFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if tf.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", tf.DisplayTimeUnit)
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}

	var spans, meta, counters int
	for i, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "X":
			spans++
			if ev.Dur < 0 || ev.Ts < 0 {
				t.Errorf("event %d (%s): negative ts/dur (%v, %v)", i, ev.Name, ev.Ts, ev.Dur)
			}
			if ev.Name == "" {
				t.Errorf("event %d: span with empty name", i)
			}
		case "M":
			meta++
		case "C":
			counters++
		default:
			t.Errorf("event %d: unexpected phase %q", i, ev.Ph)
		}
	}
	if spans == 0 || meta == 0 || counters == 0 {
		t.Fatalf("want spans, metadata and counters; got %d/%d/%d", spans, meta, counters)
	}

	// Per-worker spans must be time-ordered and non-overlapping: each
	// round's phases stack after the previous round on the same thread.
	lastEnd := map[int]float64{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.Ts < lastEnd[ev.Tid] {
			t.Fatalf("span %q on tid %d starts at %v before previous end %v",
				ev.Name, ev.Tid, ev.Ts, lastEnd[ev.Tid])
		}
		lastEnd[ev.Tid] = ev.Ts + ev.Dur
	}
}

func TestPublishExpvar(t *testing.T) {
	g := NewRegistry(8)
	g.BeginRun(RunMeta{Kernel: "expvar-test", Workers: 1, LPs: 1})
	emit(g, 0, 0, 7)
	g.Publish("obs_test_registry")
	g.Publish("obs_test_registry") // second call must not panic (expvar re-publish does)

	v := expvar.Get("obs_test_registry")
	if v == nil {
		t.Fatal("registry not published")
	}
	var s Summary
	if err := json.Unmarshal([]byte(v.String()), &s); err != nil {
		t.Fatalf("expvar payload is not a JSON Summary: %v\npayload: %s", err, v.String())
	}
	if s.Kernel != "expvar-test" || s.Events != 7 {
		t.Fatalf("summary = %+v, want kernel expvar-test with 7 events", s)
	}
}

func TestNilProbeHelpers(t *testing.T) {
	// The helpers are the nil fast path every kernel relies on; they must
	// be no-ops, not panics, for a nil probe.
	Begin(nil, RunMeta{})
	Emit(nil, &RoundRecord{})
	End(nil, &sim.RunStats{})
	End(&Registry{}, nil) // nil stats must be ignored too
}
