package obshttp

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestStartServeClose(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/ping", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "pong")
	})
	s, err := Start("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	if !strings.HasPrefix(addr, "127.0.0.1:") || strings.HasSuffix(addr, ":0") {
		t.Fatalf("bound addr = %q", addr)
	}

	resp, err := http.Get("http://" + addr + "/ping")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "pong" {
		t.Fatalf("body = %q", body)
	}

	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// The port is released: a new listener can bind it immediately.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("port not released after Close: %v", err)
	}
	ln.Close()
}

func TestCloseIsIdempotent(t *testing.T) {
	s, err := Start("127.0.0.1:0", http.NewServeMux())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestPortInUse(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if _, err := Start(ln.Addr().String(), nil); err == nil {
		t.Fatal("binding an in-use port should fail synchronously")
	}
}

func TestCloseWaitsForHandlers(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		fmt.Fprint(w, "done")
	})
	s, err := Start("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		resp, err := http.Get("http://" + s.Addr() + "/slow")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-entered
	go func() {
		// Let the in-flight handler finish well inside ShutdownGrace.
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()
	start := time.Now()
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Fatalf("Close returned in %v, before the in-flight handler finished", d)
	}
}
