// Package obshttp starts the optional debug HTTP listener the cmd tools
// expose behind a -debug-addr flag: /debug/vars (expvar, including every
// published obs.Registry) and /debug/pprof (CPU, heap, mutex, ...). It
// also provides the Server type the live-telemetry endpoints (-live)
// build on: an explicit lifecycle around net/http with graceful shutdown.
//
// It lives apart from package obs so that importing the simulation kernels
// never drags pprof's DefaultServeMux side-effect registration into user
// binaries; only tools that opt in import this package.
package obshttp

import (
	"context"
	"errors"
	_ "expvar" // registers /debug/vars on DefaultServeMux
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux
	"sync"
	"time"
)

// Serve starts an HTTP listener on addr serving the process-wide
// DefaultServeMux (expvar + pprof) in a background goroutine and returns
// the bound address (useful with ":0").
func Serve(addr string) (string, error) {
	s, err := Start(addr, nil)
	if err != nil {
		return "", err
	}
	return s.Addr(), nil
}

// Server is one HTTP listener with an explicit lifecycle: Start binds and
// serves in a background goroutine, Addr reports the bound address, Close
// shuts it down gracefully (in-flight responses get a short grace period,
// then the listener and connections are torn down). A Server is closed at
// most once; further Closes are no-ops returning the first result.
type Server struct {
	ln  net.Listener
	srv *http.Server

	closeOnce sync.Once
	closeErr  error
	done      chan struct{} // closed when the serve goroutine exits
}

// ShutdownGrace is how long Close waits for in-flight responses before
// forcing connections shut. Live snapshots are small; anything still
// writing after this is a stuck client.
const ShutdownGrace = 2 * time.Second

// Start binds addr and serves handler (the DefaultServeMux when nil) in a
// background goroutine. A bind failure — e.g. the port is already in use —
// is returned synchronously, before any goroutine starts.
func Start(addr string, handler http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		ln:   ln,
		srv:  &http.Server{Handler: handler},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			// The listener died underneath us (not via Close); there is
			// no caller to hand the error to, so record it for Close.
			s.closeOnce.Do(func() { s.closeErr = err })
		}
	}()
	return s, nil
}

// Addr returns the bound listen address (host:port, with the real port
// when Start was given ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close gracefully shuts the server down: the listener stops accepting,
// in-flight responses get ShutdownGrace to finish, then remaining
// connections are forced closed. It waits for the serve goroutine to
// exit, so no handler runs after Close returns.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), ShutdownGrace)
		defer cancel()
		err := s.srv.Shutdown(ctx)
		if errors.Is(err, context.DeadlineExceeded) {
			err = s.srv.Close()
		}
		s.closeErr = err
	})
	<-s.done
	return s.closeErr
}
