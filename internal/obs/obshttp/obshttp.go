// Package obshttp starts the optional debug HTTP listener the cmd tools
// expose behind a -debug-addr flag: /debug/vars (expvar, including every
// published obs.Registry) and /debug/pprof (CPU, heap, mutex, ...).
//
// It lives apart from package obs so that importing the simulation kernels
// never drags pprof's DefaultServeMux side-effect registration into user
// binaries; only tools that opt in import this package.
package obshttp

import (
	_ "expvar" // registers /debug/vars on DefaultServeMux
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux
)

// Serve starts an HTTP listener on addr serving the process-wide
// DefaultServeMux (expvar + pprof) in a background goroutine and returns
// the bound address (useful with ":0").
func Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() { _ = http.Serve(ln, nil) }()
	return ln.Addr().String(), nil
}
