package obs

import "expvar"

// Publish registers the registry's Snapshot under name in the process-wide
// expvar namespace (served at /debug/vars once an HTTP listener is up; see
// the obshttp subpackage). Publishing the same name twice is a no-op, so a
// tool that builds one registry per run can re-publish safely.
func (g *Registry) Publish(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return g.Snapshot() }))
}
