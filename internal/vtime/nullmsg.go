package vtime

import (
	"errors"
	"sort"

	"unison/internal/core"
	"unison/internal/eventq"
	"unison/internal/obs"
	"unison/internal/sim"
)

// The null-message virtual kernel is a meta-simulation: the ranks of the
// Chandy–Misra–Bryant protocol are themselves simulated as processes with
// virtual CPU clocks. Messages sent at a sender's virtual time V arrive
// at the receiver at V + MsgNS; a rank that cannot progress blocks until
// its earliest pending arrival (accounted as synchronization time S).
// Because CMB is asynchronous, this is the only baseline whose timing
// cannot be expressed in rounds — the meta-DES computes the true
// interleaving for any core count.

type vnmMsg struct {
	vArrive int64 // virtual arrival time at the receiver
	from    int32
	bound   sim.Time
	events  []sim.Event
	null    bool
}

type vnmRank struct {
	id      int32
	fel     *eventq.Queue
	inbox   []vnmMsg
	inFrom  []int32
	outTo   []int32
	outLA   map[int32]sim.Time
	clock   map[int32]sim.Time
	promise map[int32]sim.Time
	outBuf  map[int32][]sim.Event

	v       int64 // virtual CPU clock
	parked  bool
	done    bool
	p, s, m int64
	events  uint64
	nulls   uint64
	iter    uint64 // probe iteration counter
}

type vnmSink struct {
	r    *vnmRank
	lpOf []int32
}

func (s *vnmSink) Put(ev sim.Event) {
	tgt := s.lpOf[ev.Node]
	if tgt == s.r.id {
		s.r.fel.Push(ev)
		return
	}
	s.r.outBuf[tgt] = append(s.r.outBuf[tgt], ev)
}

func (s *vnmSink) PutGlobal(sim.Event) {
	panic("vtime: the null message kernel does not support global events")
}

func runNullMessage(m *sim.Model, cfg Config) (*sim.RunStats, error) {
	if cfg.LPOf == nil {
		return nil, errors.New("vtime: NullMessage requires a manual partition (LPOf)")
	}
	if m.StopAt <= 0 {
		return nil, errors.New("vtime: NullMessage requires Model.StopAt")
	}
	links := m.Links()
	part := core.Manual(cfg.LPOf, links)
	n := part.Count
	c := newCoster(cfg.Cost, n)
	seqs := sim.NewSeqTable(m.Nodes)

	type pair struct{ a, b int32 }
	chanLA := map[pair]sim.Time{}
	for i := range links {
		l := &links[i]
		ra, rb := part.LPOf[l.A], part.LPOf[l.B]
		if ra == rb || !l.Up {
			continue
		}
		for _, p := range []pair{{ra, rb}, {rb, ra}} {
			if la, ok := chanLA[p]; !ok || l.Delay < la {
				chanLA[p] = l.Delay
			}
		}
	}
	ranks := make([]*vnmRank, n)
	for i := range ranks {
		ranks[i] = &vnmRank{
			id:      int32(i),
			fel:     eventq.New(64),
			outLA:   map[int32]sim.Time{},
			clock:   map[int32]sim.Time{},
			promise: map[int32]sim.Time{},
			outBuf:  map[int32][]sim.Event{},
		}
	}
	// Deterministic channel setup order.
	pairs := make([]pair, 0, len(chanLA))
	for p := range chanLA {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].a != pairs[j].a {
			return pairs[i].a < pairs[j].a
		}
		return pairs[i].b < pairs[j].b
	})
	for _, p := range pairs {
		la := chanLA[p]
		ranks[p.a].outTo = append(ranks[p.a].outTo, p.b)
		ranks[p.a].outLA[p.b] = la
		ranks[p.b].inFrom = append(ranks[p.b].inFrom, p.a)
		ranks[p.b].clock[p.a] = 0
	}
	for _, ev := range m.Init {
		if ev.Node == sim.GlobalNode {
			if ev.Time == m.StopAt {
				continue
			}
			return nil, errors.New("vtime: null message kernel cannot run models with global events")
		}
		ranks[part.LPOf[ev.Node]].fel.Push(ev)
	}

	var totalEvents uint64
	var endTime sim.Time
	probe := cfg.Observe
	obs.Begin(probe, obs.RunMeta{Kernel: NullMessage.String(), Workers: n, LPs: n})

	step := func(r *vnmRank) bool {
		p0, s0, m0, ev0 := r.p, r.s, r.m, r.events
		progressed := false
		// Drain deliverable messages.
		rest := r.inbox[:0]
		var drained int64
		var recvd uint64
		for _, msg := range r.inbox {
			if msg.vArrive > r.v {
				rest = append(rest, msg)
				continue
			}
			for _, ev := range msg.events {
				r.fel.Push(ev)
			}
			recvd += uint64(len(msg.events))
			if msg.bound > r.clock[msg.from] {
				r.clock[msg.from] = msg.bound
			}
			drained++
			progressed = true
		}
		r.inbox = rest
		if drained > 0 {
			d := drained * cfg.Cost.MsgNS
			r.v += d
			r.m += d
		}
		// EIT and safe window.
		eit := sim.MaxTime
		for _, from := range r.inFrom {
			if cl := r.clock[from]; cl < eit {
				eit = cl
			}
		}
		safe := eit
		if m.StopAt < safe {
			safe = m.StopAt
		}
		// Process the safe prefix.
		sink := &vnmSink{r: r, lpOf: part.LPOf}
		ctx := sim.NewCtx(sink, int(r.id))
		for {
			ev, ok := r.fel.PopBefore(safe)
			if !ok {
				break
			}
			cost := c.cost(int(r.id), ev.Node)
			r.v += cost
			r.p += cost
			ctx.Begin(&ev, seqs.Of(ev.Node))
			ev.Fn(ctx)
			r.events++
			totalEvents++
			if ev.Time > endTime {
				endTime = ev.Time
			}
			progressed = true
		}
		// Flush events and eager nulls.
		base := r.fel.NextTime()
		if eit < base {
			base = eit
		}
		var sent uint64
		for _, to := range r.outTo {
			bound := vSatAdd(base, r.outLA[to])
			evs := r.outBuf[to]
			if len(evs) == 0 && bound <= r.promise[to] {
				continue
			}
			msg := vnmMsg{from: r.id, bound: bound, vArrive: r.v + cfg.Cost.MsgNS}
			if len(evs) > 0 {
				msg.events = append([]sim.Event(nil), evs...)
				sent += uint64(len(evs))
				r.outBuf[to] = evs[:0]
				r.m += cfg.Cost.MsgNS
				r.v += cfg.Cost.MsgNS
			} else {
				msg.null = true
				r.nulls++
				r.m += cfg.Cost.NullNS
				r.v += cfg.Cost.NullNS
			}
			r.promise[to] = bound
			peer := ranks[to]
			peer.inbox = append(peer.inbox, msg)
			if peer.parked {
				wake := msg.vArrive
				if wake > peer.v {
					peer.s += wake - peer.v
					peer.v = wake
				}
				peer.parked = false
			}
			progressed = true
		}
		// Termination.
		if r.fel.NextTime() >= m.StopAt && eit >= m.StopAt {
			r.done = true
			progressed = true
		}
		if probe != nil {
			rec := obs.RoundRecord{
				Round: r.iter, Worker: r.id, LBTS: safe,
				Events: r.events - ev0,
				ProcNS: r.p - p0, SyncNS: r.s - s0, MsgNS: r.m - m0,
				Sends: sent, SendBytes: sent * obs.EventBytes,
				Recvs: recvd, FELDepth: uint64(r.fel.Len()),
			}
			probe.OnRound(&rec)
			r.iter++
		}
		return progressed
	}

	for {
		// Pick the runnable rank with the smallest virtual clock.
		var pick *vnmRank
		for _, r := range ranks {
			if r.done || r.parked {
				continue
			}
			if pick == nil || r.v < pick.v || (r.v == pick.v && r.id < pick.id) {
				pick = r
			}
		}
		if pick == nil {
			// Everyone parked or done.
			allDone := true
			for _, r := range ranks {
				if !r.done {
					allDone = false
					break
				}
			}
			if allDone {
				break
			}
			return nil, errors.New("vtime: null message meta-simulation deadlocked")
		}
		if !step(pick) {
			// No progress: wait for the earliest pending arrival, or park.
			earliest := int64(-1)
			for _, msg := range pick.inbox {
				if earliest < 0 || msg.vArrive < earliest {
					earliest = msg.vArrive
				}
			}
			if earliest >= 0 {
				if earliest > pick.v {
					pick.s += earliest - pick.v
					pick.v = earliest
				} else {
					// Deliverable on the next step already.
					continue
				}
			} else {
				pick.parked = true
			}
		}
	}

	var virt int64
	ws := make([]sim.WorkerStats, n)
	var nulls uint64
	for i, r := range ranks {
		if r.v > virt {
			virt = r.v
		}
		ws[i] = sim.WorkerStats{P: r.p, S: r.s, M: r.m, Events: r.events}
		nulls += r.nulls
	}
	// Ranks that finished early waited (virtually) for the slowest one.
	for i, r := range ranks {
		ws[i].S += virt - r.v
		_ = r
	}
	st := &sim.RunStats{
		Kernel:   NullMessage.String(),
		Events:   totalEvents,
		EndTime:  endTime,
		LPs:      n,
		VirtualT: virt,
		Rounds:   nulls,
		Workers:  ws,
	}
	st.CacheRefs, st.CacheMisses = c.cache.Counters()
	return st, nil
}

func vSatAdd(a, b sim.Time) sim.Time {
	if a == sim.MaxTime || b == sim.MaxTime {
		return sim.MaxTime
	}
	s := a + b
	if s < a {
		return sim.MaxTime
	}
	return s
}
