package vtime

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"

	"unison/internal/core"
	"unison/internal/eventq"
	"unison/internal/obs"
	"unison/internal/sim"
)

// vrt is the shared single-threaded runtime of the round-based virtual
// kernels (sequential, barrier, unison).
type vrt struct {
	m    *sim.Model
	part *core.Partition
	fels []*eventq.Queue
	mail [][]sim.Event
	pub  *eventq.Queue
	seqs sim.SeqTable

	lbts      sim.Time
	lookahead sim.Time

	sink *vsink
	ctx  *sim.Ctx

	events  uint64
	endTime sim.Time
}

type vsink struct {
	rt    *vrt
	curLP int32 // -1 during global events
}

func (s *vsink) Put(ev sim.Event) {
	tgt := s.rt.part.LPOf[ev.Node]
	if s.curLP < 0 || tgt == s.curLP {
		s.rt.fels[tgt].Push(ev)
		return
	}
	if ev.Time < s.rt.lbts {
		panic(fmt.Sprintf("vtime: causality violation: cross-LP event at %v inside window ending %v", ev.Time, s.rt.lbts))
	}
	s.rt.mail[tgt] = append(s.rt.mail[tgt], ev)
}

func (s *vsink) PutGlobal(ev sim.Event) {
	if s.curLP >= 0 {
		panic("vtime: global events may only be scheduled at setup or from other global events")
	}
	s.rt.pub.Push(ev)
}

func newVrt(m *sim.Model, part *core.Partition) *vrt {
	r := &vrt{
		m:         m,
		part:      part,
		fels:      make([]*eventq.Queue, part.Count),
		mail:      make([][]sim.Event, part.Count),
		pub:       eventq.New(16),
		seqs:      sim.NewSeqTable(m.Nodes),
		lookahead: part.Lookahead,
	}
	for i := range r.fels {
		r.fels[i] = eventq.New(64)
	}
	r.sink = &vsink{rt: r}
	r.ctx = sim.NewCtx(r.sink, 0)
	for _, ev := range m.Init {
		if ev.Node == sim.GlobalNode {
			r.pub.Push(ev)
		} else {
			r.fels[part.LPOf[ev.Node]].Push(ev)
		}
	}
	return r
}

func (r *vrt) allMin() sim.Time {
	m := sim.MaxTime
	for _, f := range r.fels {
		if t := f.NextTime(); t < m {
			m = t
		}
	}
	return m
}

// runLP executes LP lp's window under executor e and returns its virtual
// processing cost.
func (r *vrt) runLP(lp int32, e int, c *coster) int64 {
	r.sink.curLP = lp
	fel := r.fels[lp]
	var cost int64
	for {
		ev, ok := fel.PopBefore(r.lbts)
		if !ok {
			break
		}
		cost += c.cost(e, ev.Node)
		r.ctx.Begin(&ev, r.seqs.Of(ev.Node))
		ev.Fn(r.ctx)
		r.events++
		if ev.Time > r.endTime {
			r.endTime = ev.Time
		}
	}
	return cost
}

// runGlobals executes public-LP events at the window boundary and returns
// their virtual cost and whether the model stopped.
func (r *vrt) runGlobals(c *coster) (cost int64, stopped bool) {
	r.sink.curLP = -1
	executed := false
	for !r.pub.Empty() && r.pub.Peek().Time == r.lbts {
		ev := r.pub.Pop()
		cost += c.cm.EventNS
		r.ctx.Begin(&ev, r.seqs.Of(sim.GlobalNode))
		ev.Fn(r.ctx)
		r.events++
		if ev.Time > r.endTime {
			r.endTime = ev.Time
		}
		executed = true
	}
	if executed {
		r.lookahead = core.CutLookahead(r.part.LPOf, r.m.Links())
		stopped = r.ctx.Stopped()
	}
	return cost, stopped
}

// drain moves LP lp's mailbox into its FEL and returns the event count.
func (r *vrt) drain(lp int32) int64 {
	n := int64(len(r.mail[lp]))
	for _, ev := range r.mail[lp] {
		r.fels[lp].Push(ev)
	}
	r.mail[lp] = r.mail[lp][:0]
	return n
}

// --- Sequential ---

func runSequential(m *sim.Model, cfg Config) (*sim.RunStats, error) {
	part := core.SingleLP(m.Nodes, m.Links())
	r := newVrt(m, part)
	c := newCoster(cfg.Cost, 1)
	probe := cfg.Observe
	obs.Begin(probe, obs.RunMeta{Kernel: Sequential.String(), Workers: 1, LPs: 1})
	var virt int64
	var round uint64
	for {
		r.lbts = core.Eq2(r.allMin(), r.pub.NextTime(), r.lookahead)
		if r.lbts == sim.MaxTime && r.pub.Empty() && r.fels[0].Empty() {
			break
		}
		evStart := r.events
		p := r.runLP(0, 0, c)
		g, stopped := r.runGlobals(c)
		virt += p + g
		if probe != nil {
			rec := obs.RoundRecord{
				Round: round, LBTS: r.lbts, Events: r.events - evStart,
				ProcNS: p + g, FELDepth: uint64(r.fels[0].Len()),
			}
			probe.OnRound(&rec)
			round++
		}
		if stopped {
			break
		}
	}
	st := &sim.RunStats{
		Kernel:   Sequential.String(),
		Events:   r.events,
		EndTime:  r.endTime,
		LPs:      1,
		VirtualT: virt,
		Workers:  []sim.WorkerStats{{P: virt, Events: r.events}},
	}
	st.CacheRefs, st.CacheMisses = c.cache.Counters()
	return st, nil
}

// --- Barrier synchronization (one rank per virtual core) ---

func runBarrier(m *sim.Model, cfg Config) (*sim.RunStats, error) {
	if cfg.LPOf == nil {
		return nil, errors.New("vtime: Barrier requires a manual partition (LPOf)")
	}
	part := core.Manual(cfg.LPOf, m.Links())
	n := part.Count
	r := newVrt(m, part)
	c := newCoster(cfg.Cost, n)
	ws := make([]sim.WorkerStats, n)
	var virt int64
	var rounds uint64
	var trace []sim.RoundSample
	probe := cfg.Observe
	obs.Begin(probe, obs.RunMeta{Kernel: Barrier.String(), Workers: n, LPs: n})
	evRound := make([]uint64, n)
	rc := make([]int64, n)

	r.lbts = core.Eq2(r.allMin(), r.pub.NextTime(), r.lookahead)
	if r.lbts == sim.MaxTime && r.pub.Empty() {
		return barrierStats(r, ws, virt, rounds, trace, c), nil
	}
	for {
		// Phase 1: every rank processes its window on its own core.
		var span1 int64
		p := make([]int64, n)
		for rank := 0; rank < n; rank++ {
			evBefore := r.events
			p[rank] = r.runLP(int32(rank), rank, c)
			ws[rank].P += p[rank]
			evRound[rank] = r.events - evBefore
			ws[rank].Events += evRound[rank]
			if p[rank] > span1 {
				span1 = p[rank]
			}
		}
		// Phase 2: rank 0 handles globals.
		evBefore := r.events
		g, stopped := r.runGlobals(c)
		ws[0].P += g
		ws[0].Events += r.events - evBefore
		evRound[0] += r.events - evBefore
		// Phase 3: receive cross-rank events.
		var span3 int64
		mc := make([]int64, n)
		for rank := 0; rank < n; rank++ {
			rc[rank] = r.drain(int32(rank))
			mc[rank] = rc[rank] * cfg.Cost.MsgNS
			ws[rank].M += mc[rank]
			if mc[rank] > span3 {
				span3 = mc[rank]
			}
		}
		roundTotal := span1 + g + span3 + 2*cfg.Cost.BarrierNS
		for rank := 0; rank < n; rank++ {
			busy := p[rank] + mc[rank]
			if rank == 0 {
				busy += g
			}
			ws[rank].S += roundTotal - busy
		}
		if probe != nil {
			for rank := 0; rank < n; rank++ {
				busy := p[rank] + mc[rank]
				proc := p[rank]
				if rank == 0 {
					busy += g
					proc += g
				}
				rec := obs.RoundRecord{
					Round: rounds, Worker: int32(rank), LBTS: r.lbts,
					Events: evRound[rank],
					ProcNS: proc, SyncNS: roundTotal - busy, MsgNS: mc[rank],
					WaitGlobalNS: span1 - p[rank],
					Recvs:        uint64(rc[rank]),
					FELDepth:     uint64(r.fels[rank].Len()),
				}
				probe.OnRound(&rec)
			}
		}
		virt += roundTotal
		rounds++
		if cfg.RecordRounds {
			var total int64
			for _, v := range p {
				total += v
			}
			ideal := (total + int64(n) - 1) / int64(n)
			if span1 > 0 && ideal < span1 {
				// The static partition cannot split an LP, so the longest
				// rank is also the ideal bound here.
				ideal = maxOf(p)
			}
			trace = append(trace, sim.RoundSample{
				LBTS: r.lbts, PerWorker: p,
				Makespan: roundTotal, Phase1: span1, Ideal: ideal,
			})
		}
		if stopped {
			break
		}
		allMin := r.allMin()
		pubNext := r.pub.NextTime()
		if allMin == sim.MaxTime && pubNext == sim.MaxTime {
			break
		}
		if cfg.MaxRounds > 0 && rounds >= cfg.MaxRounds {
			return nil, errors.New("vtime: MaxRounds exceeded")
		}
		r.lbts = core.Eq2(allMin, pubNext, r.lookahead)
	}
	return barrierStats(r, ws, virt, rounds, trace, c), nil
}

func maxOf(vs []int64) int64 {
	var m int64
	for _, v := range vs {
		if v > m {
			m = v
		}
	}
	return m
}

func barrierStats(r *vrt, ws []sim.WorkerStats, virt int64, rounds uint64, trace []sim.RoundSample, c *coster) *sim.RunStats {
	st := &sim.RunStats{
		Kernel:     Barrier.String(),
		Events:     r.events,
		EndTime:    r.endTime,
		LPs:        r.part.Count,
		VirtualT:   virt,
		Rounds:     rounds,
		Workers:    ws,
		RoundTrace: trace,
	}
	st.CacheRefs, st.CacheMisses = c.cache.Counters()
	return st
}

// --- Unison (fine-grained partition + load-adaptive scheduling) ---

func runUnison(m *sim.Model, cfg Config) (*sim.RunStats, error) {
	threads := cfg.Cores
	if threads <= 0 {
		return nil, errors.New("vtime: Unison requires Cores > 0")
	}
	links := m.Links()
	var part *core.Partition
	if cfg.LPOf != nil {
		part = core.Manual(cfg.LPOf, links)
	} else {
		part = core.FineGrained(m.Nodes, links)
	}
	n := part.Count
	r := newVrt(m, part)
	c := newCoster(cfg.Cost, threads)
	ws := make([]sim.WorkerStats, threads)
	var virt int64
	var rounds uint64
	var trace []sim.RoundSample

	period := uint64(cfg.Period)
	if period == 0 {
		period = 1
		if n > 1 {
			period = uint64(bits.Len(uint(n - 1)))
		}
	}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	lastP := make([]int64, n)
	pending := make([]int64, n)
	est := make([]int64, n)
	avail := make([]int64, threads)
	busyP := make([]int64, threads)
	busyM := make([]int64, threads)
	probe := cfg.Observe
	obs.Begin(probe, obs.RunMeta{Kernel: fmt.Sprintf("v-unison(t=%d)", threads), Workers: threads, LPs: n})
	evPrev := make([]uint64, threads)
	recvT := make([]uint64, threads)
	depthT := make([]uint64, threads)
	migT := make([]uint64, threads)
	lastWrk := make([]int32, n)
	for i := range lastWrk {
		lastWrk[i] = -1
	}

	// Core speeds: identical by default; heterogeneous per §7 otherwise.
	speeds := cfg.CoreSpeeds
	if speeds == nil {
		speeds = make([]float64, threads)
		for i := range speeds {
			speeds[i] = 1
		}
	} else if len(speeds) != threads {
		return nil, errors.New("vtime: CoreSpeeds length must equal Cores")
	} else {
		for _, sp := range speeds {
			if sp <= 0 {
				return nil, errors.New("vtime: CoreSpeeds must be positive")
			}
		}
	}

	r.lbts = core.Eq2(r.allMin(), r.pub.NextTime(), r.lookahead)
	if r.lbts == sim.MaxTime && r.pub.Empty() {
		return unisonStats(r, ws, virt, rounds, trace, c, threads)
	}
	argmin := func(a []int64) int {
		best := 0
		for i := 1; i < len(a); i++ {
			if a[i] < a[best] {
				best = i
			}
		}
		return best
	}
	for {
		roundIdx := rounds
		// Phase 1: greedy longest-estimated-job-first list scheduling onto
		// virtual threads (identical to the live kernel's cursor pull).
		for i := range avail {
			avail[i], busyP[i], busyM[i] = 0, 0, 0
			recvT[i], depthT[i], migT[i] = 0, 0, 0
		}
		var totalCost, maxLP int64
		for _, lp := range order {
			var t int
			if cfg.SpeedAware {
				// Pick the core with the earliest projected finish for the
				// estimated cost (LPT on uniform machines).
				t = 0
				best := float64(avail[0]) + float64(est[lp])/speeds[0]
				for i := 1; i < threads; i++ {
					if fin := float64(avail[i]) + float64(est[lp])/speeds[i]; fin < best {
						best, t = fin, i
					}
				}
			} else {
				t = argmin(avail)
			}
			evBefore := r.events
			cost := r.runLP(lp, t, c)
			lastP[lp] = cost
			wall := int64(float64(cost) / speeds[t])
			avail[t] += wall
			busyP[t] += wall
			ws[t].Events += r.events - evBefore
			if probe != nil && r.events > evBefore {
				if lastWrk[lp] != -1 && lastWrk[lp] != int32(t) {
					migT[t]++
				}
				lastWrk[lp] = int32(t)
			}
			totalCost += cost
			if cost > maxLP {
				maxLP = cost
			}
		}
		var span1 int64
		for t := 0; t < threads; t++ {
			ws[t].P += busyP[t]
			if avail[t] > span1 {
				span1 = avail[t]
			}
		}
		ideal := (totalCost + int64(threads) - 1) / int64(threads)
		if maxLP > ideal {
			ideal = maxLP
		}
		// Phase 2: worker 0 handles globals.
		evBefore := r.events
		g, stopped := r.runGlobals(c)
		ws[0].P += g
		ws[0].Events += r.events - evBefore
		// Phase 3: greedy assignment of mailbox draining.
		for i := range avail {
			avail[i] = 0
		}
		for lp := int32(0); lp < int32(n); lp++ {
			t := argmin(avail)
			k := r.drain(lp)
			pending[lp] = k
			mc := int64(float64(k*cfg.Cost.MsgNS) / speeds[t])
			avail[t] += mc
			busyM[t] += mc
			if probe != nil {
				recvT[t] += uint64(k)
				depthT[t] += uint64(r.fels[lp].Len())
			}
		}
		var span3 int64
		for t := 0; t < threads; t++ {
			ws[t].M += busyM[t]
			if avail[t] > span3 {
				span3 = avail[t]
			}
		}
		// Phase 4: window update plus periodic rescheduling on worker 0.
		rounds++
		var schedCost int64
		if cfg.Metric != core.MetricNone && rounds%period == 0 {
			schedCost = int64(n) * cfg.Cost.SortPerLPNS
			for i := 0; i < n; i++ {
				if cfg.Metric == core.MetricPrevTime {
					est[i] = lastP[i]
				} else {
					est[i] = pending[i]
				}
			}
			sort.SliceStable(order, func(a, b int) bool { return est[order[a]] > est[order[b]] })
		}
		ws[0].M += schedCost
		roundTotal := span1 + g + span3 + schedCost + 4*cfg.Cost.SpinBarrierNS
		for t := 0; t < threads; t++ {
			busy := busyP[t] + busyM[t]
			if t == 0 {
				busy += g + schedCost
			}
			ws[t].S += roundTotal - busy
		}
		if probe != nil {
			for t := 0; t < threads; t++ {
				busy := busyP[t] + busyM[t]
				proc := busyP[t]
				msg := busyM[t]
				if t == 0 {
					busy += g + schedCost
					proc += g
					msg += schedCost
				}
				rec := obs.RoundRecord{
					Round: roundIdx, Worker: int32(t), LBTS: r.lbts,
					Events: ws[t].Events - evPrev[t],
					ProcNS: proc, SyncNS: roundTotal - busy, MsgNS: msg,
					WaitGlobalNS: span1 - busyP[t],
					Recvs:        recvT[t], FELDepth: depthT[t],
					Migrations: migT[t],
				}
				probe.OnRound(&rec)
				evPrev[t] = ws[t].Events
			}
		}
		virt += roundTotal
		if cfg.RecordRounds {
			trace = append(trace, sim.RoundSample{
				LBTS: r.lbts, PerWorker: append([]int64(nil), busyP...),
				Makespan: roundTotal, Phase1: span1, Ideal: ideal,
			})
		}
		if stopped {
			break
		}
		allMin := r.allMin()
		pubNext := r.pub.NextTime()
		if allMin == sim.MaxTime && pubNext == sim.MaxTime {
			break
		}
		if cfg.MaxRounds > 0 && rounds >= cfg.MaxRounds {
			return nil, errors.New("vtime: MaxRounds exceeded")
		}
		r.lbts = core.Eq2(allMin, pubNext, r.lookahead)
	}
	return unisonStats(r, ws, virt, rounds, trace, c, threads)
}

func unisonStats(r *vrt, ws []sim.WorkerStats, virt int64, rounds uint64, trace []sim.RoundSample, c *coster, threads int) (*sim.RunStats, error) {
	st := &sim.RunStats{
		Kernel:     fmt.Sprintf("v-unison(t=%d)", threads),
		Events:     r.events,
		EndTime:    r.endTime,
		LPs:        r.part.Count,
		VirtualT:   virt,
		Rounds:     rounds,
		Workers:    ws,
		RoundTrace: trace,
	}
	st.CacheRefs, st.CacheMisses = c.cache.Counters()
	return st, nil
}
