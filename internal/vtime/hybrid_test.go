package vtime

import (
	"testing"

	"unison/internal/des"
)

func TestHybridMatchesSequentialResults(t *testing.T) {
	mRef, monRef, _ := scenario(21, 0.3)
	if _, err := des.New().Run(mRef); err != nil {
		t.Fatal(err)
	}
	m, mon, _ := scenario(21, 0.3)
	hostOf := make([]int32, m.Nodes)
	for i := range hostOf {
		hostOf[i] = int32(i % 2)
	}
	st, err := Run(m, Config{Algo: Hybrid, HostOf: hostOf, CoresPerHost: 4})
	if err != nil {
		t.Fatal(err)
	}
	if mon.Fingerprint() != monRef.Fingerprint() {
		t.Fatal("hybrid diverged from sequential DES")
	}
	if len(st.Workers) != 8 {
		t.Fatalf("workers=%d, want 2 hosts x 4 cores", len(st.Workers))
	}
}

func TestHybridSlowerThanPureUnisonAtEqualCores(t *testing.T) {
	// Same total core count: the hybrid pays the inter-host all-reduce
	// and cannot migrate LPs across hosts, so it must not be faster.
	m1, _, _ := scenario(22, 0.5)
	uni, err := Run(m1, Config{Algo: Unison, Cores: 8})
	if err != nil {
		t.Fatal(err)
	}
	m2, _, _ := scenario(22, 0.5)
	hostOf := make([]int32, m2.Nodes)
	for i := range hostOf {
		hostOf[i] = int32(i % 2)
	}
	hyb, err := Run(m2, Config{Algo: Hybrid, HostOf: hostOf, CoresPerHost: 4})
	if err != nil {
		t.Fatal(err)
	}
	if hyb.VirtualT < uni.VirtualT {
		t.Fatalf("hybrid %d faster than pure unison %d at equal cores", hyb.VirtualT, uni.VirtualT)
	}
}

func TestHybridBeatsSequential(t *testing.T) {
	m1, _, _ := scenario(23, 0)
	seq, err := Run(m1, Config{Algo: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	m2, _, _ := scenario(23, 0)
	hostOf := make([]int32, m2.Nodes)
	for i := range hostOf {
		hostOf[i] = int32(i % 2)
	}
	hyb, err := Run(m2, Config{Algo: Hybrid, HostOf: hostOf, CoresPerHost: 4})
	if err != nil {
		t.Fatal(err)
	}
	if Speedup(seq, hyb) <= 1.5 {
		t.Fatalf("hybrid speedup %.2f too low", Speedup(seq, hyb))
	}
}

func TestHybridValidation(t *testing.T) {
	m, _, _ := scenario(24, 0)
	if _, err := Run(m, Config{Algo: Hybrid}); err == nil {
		t.Error("hybrid without HostOf accepted")
	}
	m2, _, _ := scenario(24, 0)
	if _, err := Run(m2, Config{Algo: Hybrid, HostOf: make([]int32, m2.Nodes)}); err == nil {
		t.Error("hybrid without CoresPerHost accepted")
	}
}

func TestHeterogeneousCoresResults(t *testing.T) {
	// Hetero cores must not change simulation results, only timing.
	mRef, monRef, _ := scenario(25, 0.5)
	if _, err := des.New().Run(mRef); err != nil {
		t.Fatal(err)
	}
	m, mon, _ := scenario(25, 0.5)
	speeds := []float64{1, 1, 0.5, 0.5}
	if _, err := Run(m, Config{Algo: Unison, Cores: 4, CoreSpeeds: speeds}); err != nil {
		t.Fatal(err)
	}
	if mon.Fingerprint() != monRef.Fingerprint() {
		t.Fatal("heterogeneous cores changed simulation results")
	}
}

func TestSpeedAwareSchedulerHelpsOnHeteroCores(t *testing.T) {
	speeds := []float64{1, 1, 1, 1, 0.25, 0.25, 0.25, 0.25}
	m1, _, _ := scenario(26, 0)
	naive, err := Run(m1, Config{Algo: Unison, Cores: 8, CoreSpeeds: speeds})
	if err != nil {
		t.Fatal(err)
	}
	m2, _, _ := scenario(26, 0)
	aware, err := Run(m2, Config{Algo: Unison, Cores: 8, CoreSpeeds: speeds, SpeedAware: true})
	if err != nil {
		t.Fatal(err)
	}
	if aware.VirtualT >= naive.VirtualT {
		t.Fatalf("speed-aware %d not better than naive %d on 4x-skewed cores",
			aware.VirtualT, naive.VirtualT)
	}
}

func TestCoreSpeedsValidation(t *testing.T) {
	m, _, _ := scenario(27, 0)
	if _, err := Run(m, Config{Algo: Unison, Cores: 4, CoreSpeeds: []float64{1, 1}}); err == nil {
		t.Error("mismatched CoreSpeeds length accepted")
	}
	m2, _, _ := scenario(27, 0)
	if _, err := Run(m2, Config{Algo: Unison, Cores: 2, CoreSpeeds: []float64{1, -1}}); err == nil {
		t.Error("negative core speed accepted")
	}
}
