package vtime

import (
	"testing"

	"unison/internal/core"
	"unison/internal/des"
	"unison/internal/flowmon"
	"unison/internal/netdev"
	"unison/internal/routing"
	"unison/internal/sim"
	"unison/internal/tcp"
	"unison/internal/topology"
	"unison/internal/traffic"
)

// scenario builds a deterministic fat-tree TCP model for the virtual
// kernels.
func scenario(seed uint64, incast float64) (*sim.Model, *flowmon.Monitor, []int32) {
	ft := topology.BuildFatTree(topology.FatTreeK(4, 10_000_000_000, 3*sim.Microsecond))
	stop := sim.Time(sim.Millisecond)
	flows := traffic.Generate(traffic.Config{
		Seed: seed, Hosts: ft.Hosts(), Sizes: traffic.GRPCCDF(), Load: 0.4,
		BisectionBps: ft.BisectionBandwidth(), Start: 0, End: stop / 2,
		IncastRatio: incast,
	})
	mon := flowmon.NewMonitor(len(flows))
	net := netdev.New(ft.Graph, routing.NewECMP(ft.Graph, routing.Hops, seed), netdev.DefaultConfig(seed))
	stack := tcp.NewStack(net, tcp.DefaultConfig(), mon)
	s := sim.NewSetup()
	stack.Attach(s, flows)
	s.Global(stop, func(ctx *sim.Ctx) { ctx.Stop() })
	lpOf := make([]int32, ft.N())
	for i := range lpOf {
		lpOf[i] = int32(i % 4)
	}
	return &sim.Model{Nodes: ft.N(), Links: ft.LinkInfos, Init: s.Events(), StopAt: stop}, mon, lpOf
}

func TestVirtualKernelsMatchLiveResults(t *testing.T) {
	mRef, monRef, _ := scenario(3, 0.3)
	if _, err := des.New().Run(mRef); err != nil {
		t.Fatal(err)
	}
	want := monRef.Fingerprint()
	cases := []Config{
		{Algo: Sequential},
		{Algo: Barrier},
		{Algo: NullMessage},
		{Algo: Unison, Cores: 4},
		{Algo: Unison, Cores: 16, Metric: core.MetricPendingEvents},
	}
	for _, cfg := range cases {
		m, mon, lpOf := scenario(3, 0.3)
		if cfg.Algo == Barrier || cfg.Algo == NullMessage {
			cfg.LPOf = lpOf
		}
		if _, err := Run(m, cfg); err != nil {
			t.Fatalf("%v: %v", cfg.Algo, err)
		}
		if mon.Fingerprint() != want {
			t.Errorf("%v: diverged from sequential DES", cfg.Algo)
		}
	}
}

func TestAccountingIdentity(t *testing.T) {
	// Per worker, P+S+M must sum to the run's virtual time for the
	// round-based kernels.
	m, _, lpOf := scenario(4, 0)
	st, err := Run(m, Config{Algo: Barrier, LPOf: lpOf})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range st.Workers {
		if got := w.P + w.S + w.M; got != st.VirtualT {
			t.Errorf("worker %d: P+S+M=%d != VirtualT=%d", i, got, st.VirtualT)
		}
	}
	m2, _, _ := scenario(4, 0)
	st2, err := Run(m2, Config{Algo: Unison, Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range st2.Workers {
		if got := w.P + w.S + w.M; got != st2.VirtualT {
			t.Errorf("unison worker %d: P+S+M=%d != VirtualT=%d", i, got, st2.VirtualT)
		}
	}
}

func TestMoreCoresNeverSlower(t *testing.T) {
	var prev int64
	for i, cores := range []int{1, 4, 16} {
		m, _, _ := scenario(5, 0)
		st, err := Run(m, Config{Algo: Unison, Cores: cores})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && st.VirtualT > prev*11/10 {
			t.Errorf("cores=%d virtual time %d much worse than %d", cores, st.VirtualT, prev)
		}
		prev = st.VirtualT
	}
}

func TestUnisonBeatsBarrierUnderIncast(t *testing.T) {
	mB, _, lpOf := scenario(6, 1.0)
	bar, err := Run(mB, Config{Algo: Barrier, LPOf: lpOf})
	if err != nil {
		t.Fatal(err)
	}
	mU, _, _ := scenario(6, 1.0)
	uni, err := Run(mU, Config{Algo: Unison, Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	if uni.VirtualT >= bar.VirtualT {
		t.Errorf("unison %d not faster than barrier %d under incast", uni.VirtualT, bar.VirtualT)
	}
	if Speedup(bar, uni) <= 1 {
		t.Error("Speedup helper inconsistent")
	}
}

func TestDeterministicVirtualTimes(t *testing.T) {
	run := func() int64 {
		m, _, _ := scenario(7, 0.5)
		st, err := Run(m, Config{Algo: Unison, Cores: 8})
		if err != nil {
			t.Fatal(err)
		}
		return st.VirtualT
	}
	if run() != run() {
		t.Fatal("virtual times differ across identical runs")
	}
}

func TestCalibrate(t *testing.T) {
	m, _, _ := scenario(8, 0)
	cm := Calibrate(m, 20000)
	if cm.EventNS <= 0 {
		t.Fatalf("calibrated EventNS=%d", cm.EventNS)
	}
	if cm.EventNS > 1_000_000 {
		t.Fatalf("calibrated EventNS=%d implausibly large", cm.EventNS)
	}
}

func TestConfigValidation(t *testing.T) {
	m, _, _ := scenario(9, 0)
	if _, err := Run(m, Config{Algo: Barrier}); err == nil {
		t.Error("barrier without partition accepted")
	}
	m2, _, _ := scenario(9, 0)
	if _, err := Run(m2, Config{Algo: Unison}); err == nil {
		t.Error("unison without cores accepted")
	}
	m3, _, lpOf := scenario(9, 0)
	m3.StopAt = 0
	if _, err := Run(m3, Config{Algo: NullMessage, LPOf: lpOf}); err == nil {
		t.Error("null message without StopAt accepted")
	}
}

func TestCostModelDefaults(t *testing.T) {
	var c CostModel
	c.fillDefaults()
	d := DefaultCostModel()
	if c != d {
		t.Fatalf("zero-value defaults %+v != %+v", c, d)
	}
	// Negative MissNS disables the cache term.
	c = CostModel{MissNS: -1}
	c.fillDefaults()
	if c.MissNS != 0 {
		t.Fatal("negative MissNS not treated as disable")
	}
}

func TestMaxRoundsGuard(t *testing.T) {
	m, _, _ := scenario(10, 0)
	if _, err := Run(m, Config{Algo: Unison, Cores: 4, MaxRounds: 3}); err == nil {
		t.Fatal("MaxRounds did not trip")
	}
}
