package vtime

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"

	"unison/internal/core"
	"unison/internal/obs"
	"unison/internal/sim"
)

// runHybrid models the §5.2 hybrid kernel: a static host-level partition
// with Unison's fine-grained partition and scheduling inside each host,
// synchronized by a per-round inter-host all-reduce. Each simulation host
// owns CoresPerHost virtual cores; LPs never migrate across hosts, and
// every round additionally pays the MPI-style collective cost (BarrierNS)
// on top of the intra-host spin barriers.
func runHybrid(m *sim.Model, cfg Config) (*sim.RunStats, error) {
	if cfg.HostOf == nil {
		return nil, errors.New("vtime: Hybrid requires HostOf")
	}
	tph := cfg.CoresPerHost
	if tph <= 0 {
		return nil, errors.New("vtime: Hybrid requires CoresPerHost > 0")
	}
	links := m.Links()
	lpOf, hostOfLP, lookahead, err := core.HybridPartition(m.Nodes, cfg.HostOf, links)
	if err != nil {
		return nil, err
	}
	hosts := 0
	for _, h := range cfg.HostOf {
		if int(h)+1 > hosts {
			hosts = int(h) + 1
		}
	}
	part := &core.Partition{LPOf: lpOf, Count: len(hostOfLP), Lookahead: lookahead}
	r := newVrt(m, part)
	n := part.Count
	workers := hosts * tph
	c := newCoster(cfg.Cost, workers)
	ws := make([]sim.WorkerStats, workers)
	var virt int64
	var rounds uint64

	period := uint64(cfg.Period)
	if period == 0 {
		period = 1
		if n > 1 {
			period = uint64(bits.Len(uint(n - 1)))
		}
	}
	// Per-host LP lists and schedules.
	hostLPs := make([][]int32, hosts)
	for lp, h := range hostOfLP {
		hostLPs[h] = append(hostLPs[h], int32(lp))
	}
	order := make([][]int32, hosts)
	for h := range order {
		order[h] = append([]int32(nil), hostLPs[h]...)
	}
	lastP := make([]int64, n)
	pending := make([]int64, n)
	est := make([]int64, n)
	avail := make([]int64, workers)
	busyP := make([]int64, workers)
	busyM := make([]int64, workers)
	probe := cfg.Observe
	obs.Begin(probe, obs.RunMeta{Kernel: fmt.Sprintf("v-hybrid(%dx%d)", hosts, tph), Workers: workers, LPs: n})
	evPrev := make([]uint64, workers)
	recvT := make([]uint64, workers)
	migT := make([]uint64, workers)
	lastWrk := make([]int32, n)
	for i := range lastWrk {
		lastWrk[i] = -1
	}

	r.lbts = core.Eq2(r.allMin(), r.pub.NextTime(), r.lookahead)
	if r.lbts == sim.MaxTime && r.pub.Empty() {
		return hybridStats(r, ws, virt, rounds, c, hosts, tph), nil
	}
	argminIn := func(a []int64, lo, hi int) int {
		best := lo
		for i := lo + 1; i < hi; i++ {
			if a[i] < a[best] {
				best = i
			}
		}
		return best
	}
	for {
		roundIdx := rounds
		for i := range avail {
			avail[i], busyP[i], busyM[i] = 0, 0, 0
			recvT[i], migT[i] = 0, 0
		}
		// Phase 1: each host schedules its own LPs onto its own cores.
		var span1 int64
		for h := 0; h < hosts; h++ {
			lo, hi := h*tph, (h+1)*tph
			for _, lp := range order[h] {
				t := argminIn(avail, lo, hi)
				evBefore := r.events
				cost := r.runLP(lp, t, c)
				lastP[lp] = cost
				avail[t] += cost
				busyP[t] += cost
				ws[t].Events += r.events - evBefore
				if probe != nil && r.events > evBefore {
					if lastWrk[lp] != -1 && lastWrk[lp] != int32(t) {
						migT[t]++
					}
					lastWrk[lp] = int32(t)
				}
			}
		}
		for t := 0; t < workers; t++ {
			ws[t].P += busyP[t]
			if avail[t] > span1 {
				span1 = avail[t]
			}
		}
		// Phase 2: the global main thread handles public events.
		evBefore := r.events
		g, stopped := r.runGlobals(c)
		ws[0].P += g
		ws[0].Events += r.events - evBefore
		// Phase 3: receive, host-scoped.
		for i := range avail {
			avail[i] = 0
		}
		for h := 0; h < hosts; h++ {
			lo, hi := h*tph, (h+1)*tph
			for _, lp := range hostLPs[h] {
				t := argminIn(avail, lo, hi)
				k := r.drain(lp)
				pending[lp] = k
				mc := k * cfg.Cost.MsgNS
				avail[t] += mc
				busyM[t] += mc
				if probe != nil {
					recvT[t] += uint64(k)
				}
			}
		}
		var span3 int64
		for t := 0; t < workers; t++ {
			ws[t].M += busyM[t]
			if avail[t] > span3 {
				span3 = avail[t]
			}
		}
		// Phase 4: window all-reduce plus per-host rescheduling.
		rounds++
		var schedCost int64
		if cfg.Metric != core.MetricNone && rounds%period == 0 {
			schedCost = int64(n) * cfg.Cost.SortPerLPNS
			for i := 0; i < n; i++ {
				if cfg.Metric == core.MetricPrevTime {
					est[i] = lastP[i]
				} else {
					est[i] = pending[i]
				}
			}
			for h := 0; h < hosts; h++ {
				ord := order[h]
				sort.SliceStable(ord, func(a, b int) bool { return est[ord[a]] > est[ord[b]] })
			}
		}
		ws[0].M += schedCost
		// Intra-host spin barriers plus the inter-host all-reduce.
		roundTotal := span1 + g + span3 + schedCost + 4*cfg.Cost.SpinBarrierNS + 2*cfg.Cost.BarrierNS
		for t := 0; t < workers; t++ {
			busy := busyP[t] + busyM[t]
			if t == 0 {
				busy += g + schedCost
			}
			ws[t].S += roundTotal - busy
		}
		if probe != nil {
			for t := 0; t < workers; t++ {
				busy := busyP[t] + busyM[t]
				proc := busyP[t]
				msg := busyM[t]
				if t == 0 {
					busy += g + schedCost
					proc += g
					msg += schedCost
				}
				rec := obs.RoundRecord{
					Round: roundIdx, Worker: int32(t), LBTS: r.lbts,
					Events: ws[t].Events - evPrev[t],
					ProcNS: proc, SyncNS: roundTotal - busy, MsgNS: msg,
					WaitGlobalNS: span1 - busyP[t],
					Recvs:        recvT[t], Migrations: migT[t],
					AllReduceNS: 2 * cfg.Cost.BarrierNS,
				}
				probe.OnRound(&rec)
				evPrev[t] = ws[t].Events
			}
		}
		virt += roundTotal
		if stopped {
			break
		}
		allMin := r.allMin()
		pubNext := r.pub.NextTime()
		if allMin == sim.MaxTime && pubNext == sim.MaxTime {
			break
		}
		if cfg.MaxRounds > 0 && rounds >= cfg.MaxRounds {
			return nil, errors.New("vtime: MaxRounds exceeded")
		}
		r.lbts = core.Eq2(allMin, pubNext, r.lookahead)
	}
	return hybridStats(r, ws, virt, rounds, c, hosts, tph), nil
}

func hybridStats(r *vrt, ws []sim.WorkerStats, virt int64, rounds uint64, c *coster, hosts, tph int) *sim.RunStats {
	st := &sim.RunStats{
		Kernel:   fmt.Sprintf("v-hybrid(%dx%d)", hosts, tph),
		Events:   r.events,
		EndTime:  r.endTime,
		LPs:      r.part.Count,
		VirtualT: virt,
		Rounds:   rounds,
		Workers:  ws,
	}
	st.CacheRefs, st.CacheMisses = c.cache.Counters()
	return st
}
