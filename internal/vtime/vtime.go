// Package vtime is the virtual testbed: it executes the same partition,
// window, mailbox and scheduling algorithms as the live kernels, but on a
// single real thread, with every virtual worker/rank owning a virtual
// clock advanced by a calibrated per-event cost model. Round makespans,
// the P/S/M decomposition, and speedups are therefore computed exactly
// and deterministically for any requested core count — the substitution
// for the paper's 16–144-core testbeds (DESIGN.md §1).
//
// The simulation itself is executed for real (every event callback runs),
// so the virtual run produces the same simulation results as the live
// kernels; only the time accounting is modeled.
package vtime

import (
	"errors"
	"fmt"
	"time"

	"unison/internal/core"
	"unison/internal/obs"
	"unison/internal/sim"
)

// Algorithm selects which kernel the virtual testbed models.
type Algorithm uint8

const (
	// Sequential models the sequential DES kernel.
	Sequential Algorithm = iota
	// Barrier models the barrier-synchronization PDES baseline: one rank
	// per virtual core, static partition, global LBTS rounds.
	Barrier
	// NullMessage models the Chandy–Misra–Bryant baseline: one rank per
	// virtual core, pairwise channel synchronization.
	NullMessage
	// Unison models the Unison kernel: fine-grained partition and
	// load-adaptive scheduling over `Cores` virtual worker threads.
	Unison
	// Hybrid models the §5.2 multi-host kernel: HostOf assigns nodes to
	// simulation hosts, each with CoresPerHost cores, synchronized by a
	// per-round inter-host all-reduce.
	Hybrid
)

func (a Algorithm) String() string {
	switch a {
	case Sequential:
		return "v-sequential"
	case Barrier:
		return "v-barrier"
	case NullMessage:
		return "v-nullmsg"
	case Unison:
		return "v-unison"
	default:
		return "v-hybrid"
	}
}

// Config parameterizes a virtual-testbed run.
type Config struct {
	Algo Algorithm
	// Cores is the virtual worker count for Unison. The rank-per-core
	// baselines derive their core count from the partition instead.
	Cores int
	// LPOf is the static manual partition (mandatory for Barrier and
	// NullMessage; optional manual override for Unison).
	LPOf []int32
	// Metric and Period configure Unison's load-adaptive scheduler.
	Metric core.Metric
	Period int
	// HostOf and CoresPerHost configure the Hybrid algorithm.
	HostOf       []int32
	CoresPerHost int
	// CoreSpeeds gives each Unison virtual core a relative speed (1.0 =
	// nominal). Defaults to identical cores — the assumption the paper's
	// scheduler makes (§7).
	CoreSpeeds []float64
	// SpeedAware makes the scheduler account for core speeds when
	// choosing where the next LP runs (the §7 "more general scheduling
	// strategy"); when false, heterogeneous cores are scheduled naively.
	SpeedAware bool
	// Cost converts events into virtual nanoseconds.
	Cost CostModel
	// RecordRounds captures the per-round trace.
	RecordRounds bool
	// MaxRounds aborts runaway simulations when positive.
	MaxRounds uint64
	// Observe, when non-nil, receives one obs.RoundRecord per virtual
	// worker per round. Because the testbed is single-threaded and its
	// clocks are modeled, every record field — including the NS timings —
	// is deterministic.
	Observe obs.Probe
}

// Run executes m under the virtual testbed.
func Run(m *sim.Model, cfg Config) (*sim.RunStats, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("vtime: %w", err)
	}
	if m.Ckpt != nil {
		// The testbed models wall clocks, not real ones, and replays whole
		// runs cheaply — snapshotting it would pin modeled clock state the
		// format deliberately excludes.
		return nil, errors.New("vtime: the virtual testbed does not support checkpoint/restore")
	}
	cfg.Cost.fillDefaults()
	start := time.Now() //unison:wallclock-ok wall-clock run timing for RunStats.WallNS
	var st *sim.RunStats
	var err error
	switch cfg.Algo {
	case Sequential:
		st, err = runSequential(m, cfg)
	case Barrier:
		st, err = runBarrier(m, cfg)
	case NullMessage:
		st, err = runNullMessage(m, cfg)
	case Unison:
		st, err = runUnison(m, cfg)
	case Hybrid:
		st, err = runHybrid(m, cfg)
	default:
		return nil, errors.New("vtime: unknown algorithm")
	}
	if st != nil {
		st.WallNS = time.Since(start).Nanoseconds() //unison:wallclock-ok wall-clock run timing for RunStats.WallNS
	}
	if err == nil {
		obs.End(cfg.Observe, st)
	}
	return st, err
}

// Speedup returns base's virtual time divided by st's — the figure-of-
// merit of every speedup plot.
func Speedup(base, st *sim.RunStats) float64 {
	if st.VirtualT == 0 {
		return 0
	}
	return float64(base.VirtualT) / float64(st.VirtualT)
}
