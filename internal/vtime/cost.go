package vtime

import (
	"time"

	"unison/internal/eventq"
	"unison/internal/metrics"
	"unison/internal/sim"
)

// CostModel converts kernel actions into virtual nanoseconds. The model
// captures the quantities the paper's analysis depends on: per-event
// processing cost (with a locality-dependent cache term, which produces
// the super-linear speedups of Fig 8b and the granularity effects of
// Fig 12), per-message transfer cost, barrier/collective overhead, null
// message overhead, and scheduler sorting cost.
type CostModel struct {
	// EventNS is the base cost of executing one event.
	EventNS int64
	// MissNS is added for every modeled cache miss (see metrics.CacheModel).
	MissNS int64
	// CacheWays is the working-set associativity of the locality model.
	CacheWays int
	// MsgNS is the cost of transferring one cross-LP event.
	MsgNS int64
	// BarrierNS is the per-worker cost of one barrier crossing in the
	// baseline PDES kernels, including the MPI collective that computes
	// the LBTS.
	BarrierNS int64
	// SpinBarrierNS is the cost of one of Unison's in-process
	// sense-reversing atomic barriers (§5.1) — far cheaper than an MPI
	// collective.
	SpinBarrierNS int64
	// NullNS is the cost of sending one null message.
	NullNS int64
	// SortPerLPNS is the scheduler's per-LP sorting cost per resort.
	SortPerLPNS int64
}

// DefaultCostModel returns constants calibrated against live event costs
// measured on the development machine (see Calibrate); they are in the
// regime of ns-3 event costs (≈1 µs/event), where all of the paper's
// observations live.
func DefaultCostModel() CostModel {
	return CostModel{
		EventNS:       1000,
		MissNS:        500,
		CacheWays:     8,
		MsgNS:         120,
		BarrierNS:     2500,
		SpinBarrierNS: 300,
		NullNS:        400,
		SortPerLPNS:   25,
	}
}

func (c *CostModel) fillDefaults() {
	d := DefaultCostModel()
	if c.EventNS <= 0 {
		c.EventNS = d.EventNS
	}
	// MissNS == 0 means "default"; pass a negative value to disable the
	// cache-locality term explicitly.
	if c.MissNS == 0 {
		c.MissNS = d.MissNS
	}
	if c.MissNS < 0 {
		c.MissNS = 0
	}
	if c.CacheWays <= 0 {
		c.CacheWays = d.CacheWays
	}
	if c.MsgNS <= 0 {
		c.MsgNS = d.MsgNS
	}
	if c.BarrierNS <= 0 {
		c.BarrierNS = d.BarrierNS
	}
	if c.SpinBarrierNS <= 0 {
		c.SpinBarrierNS = d.SpinBarrierNS
	}
	if c.NullNS <= 0 {
		c.NullNS = d.NullNS
	}
	if c.SortPerLPNS <= 0 {
		c.SortPerLPNS = d.SortPerLPNS
	}
}

// Calibrate measures the real cost of executing events of the given model
// on this machine and returns a cost model whose EventNS matches it. It
// runs a bounded number of events sequentially.
func Calibrate(m *sim.Model, maxEvents uint64) CostModel {
	cm := DefaultCostModel()
	fel := eventq.New(1024)
	for _, ev := range m.Init {
		fel.Push(ev)
	}
	seqs := sim.NewSeqTable(m.Nodes)
	sink := &calSink{fel: fel}
	ctx := sim.NewCtx(sink, 0)
	var n uint64
	t0 := time.Now() //unison:wallclock-ok calibrates the real per-event cost baseline
	for !fel.Empty() && n < maxEvents {
		ev := fel.Pop()
		ctx.Begin(&ev, seqs.Of(ev.Node))
		ev.Fn(ctx)
		n++
		if ctx.Stopped() {
			break
		}
	}
	if n > 0 {
		per := time.Since(t0).Nanoseconds() / int64(n) //unison:wallclock-ok calibrates the real per-event cost baseline
		if per > 0 {
			cm.EventNS = per
			cm.MissNS = per / 2
		}
	}
	return cm
}

type calSink struct{ fel *eventq.Queue }

func (s *calSink) Put(ev sim.Event)       { s.fel.Push(ev) }
func (s *calSink) PutGlobal(ev sim.Event) { s.fel.Push(ev) }

// coster executes one event and returns its modeled cost, maintaining the
// per-executor cache locality model.
type coster struct {
	cm    CostModel
	cache *metrics.CacheModel
}

func newCoster(cm CostModel, executors int) *coster {
	return &coster{cm: cm, cache: metrics.NewCacheModel(executors, cm.CacheWays)}
}

// cost returns the virtual cost of an event on node n run by executor e.
func (c *coster) cost(e int, n sim.NodeID) int64 {
	if c.cache.Touch(e, n) {
		return c.cm.EventNS + c.cm.MissNS
	}
	return c.cm.EventNS
}
