package app

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"unison/internal/packet"
	"unison/internal/sim"
)

// TestScenarioMarshalStable: Marshal is canonical — parsing a marshaled
// scenario and marshaling again reproduces the bytes. This is what makes
// scenario files diffable and lets tooling rewrite them without churn.
func TestScenarioMarshalStable(t *testing.T) {
	sc := DefaultScenario()
	sc.Collective = &CollectiveSpec{Pattern: "ring-allreduce", MessageBytes: 1 << 20, ChunkBytes: 64 << 10}
	first, err := sc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	re, err := ParseScenario(first, "json")
	if err != nil {
		t.Fatal(err)
	}
	second, err := re.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("marshal not stable:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}

// TestScenarioExampleFilesRoundTrip loads every shipped scenario file,
// requires it to build, and requires the canonical marshal of its parse
// to be a fixed point.
func TestScenarioExampleFilesRoundTrip(t *testing.T) {
	root := filepath.Join("..", "..", "examples")
	var found int
	err := filepath.Walk(root, func(p string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		if !strings.HasSuffix(p, ".scenario.json") && !strings.HasSuffix(p, ".scenario.toml") {
			return nil
		}
		found++
		t.Run(filepath.Base(p), func(t *testing.T) {
			sc, err := LoadScenario(p)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sc.Build(); err != nil {
				t.Fatalf("build: %v", err)
			}
			out, err := sc.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			re, err := ParseScenario(out, "json")
			if err != nil {
				t.Fatalf("reparse: %v", err)
			}
			out2, err := re.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out, out2) {
				t.Fatal("canonical marshal is not a fixed point")
			}
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if found < 10 {
		t.Fatalf("expected the shipped scenario files under examples/, found %d", found)
	}
}

// TestScenarioUnknownKeyPath: unknown keys are rejected with the full
// dotted path of the offending key, at any nesting depth.
func TestScenarioUnknownKeyPath(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`{"version":1,"stop":"2ms","topologgy":{}}`, "topologgy"},
		{`{"version":1,"stop":"2ms","topology":{"kind":"fattree","bwgbps":10}}`, "topology.bwgbps"},
		{`{"version":1,"stop":"2ms","topology":{"kind":"fattree"},"protocol":{"tcp":{"min_rt0":"1ms"}}}`, "protocol.tcp.min_rt0"},
		{`{"version":1,"stop":"2ms","topology":{"kind":"fattree"},"collective":{"pattern":"alltoall","message_byte":1}}`, "collective.message_byte"},
	}
	for _, tc := range cases {
		_, err := ParseScenario([]byte(tc.src), "json")
		if err == nil {
			t.Errorf("%s: no error", tc.want)
			continue
		}
		if !strings.Contains(err.Error(), "unknown key "+tc.want) {
			t.Errorf("error %q does not name path %q", err, tc.want)
		}
	}
}

// TestScenarioVersionGate: the version key is required and must equal
// SchemaVersion exactly; forward compatibility is by adding optional
// keys, never by silently accepting a different version.
func TestScenarioVersionGate(t *testing.T) {
	for _, src := range []string{
		`{"stop":"2ms","topology":{"kind":"fattree"},"traffic":{"load":0.3}}`,
		`{"version":2,"stop":"2ms","topology":{"kind":"fattree"},"traffic":{"load":0.3}}`,
	} {
		if _, err := ParseScenario([]byte(src), "json"); err == nil {
			t.Errorf("accepted scenario with bad version: %s", src)
		} else if !strings.Contains(err.Error(), "version") {
			t.Errorf("error %q does not mention the version", err)
		}
	}
}

// TestScenarioTOMLEquivalent: the TOML form decodes to the same scenario
// as the JSON form, including duration strings and nested sections.
func TestScenarioTOMLEquivalent(t *testing.T) {
	jsonSrc := `{
  "version": 1, "name": "t", "seed": 7, "stop": "2ms",
  "topology": {"kind": "fattree", "k": 8, "bw_gbps": 25, "delay": "1us"},
  "protocol": {"tcp": {"variant": "dctcp", "delayed_ack": true}, "queue": {"kind": "dctcp", "ecn_k": 65}},
  "traffic": {"load": 0.5, "sizes": "websearch", "end": "1ms"},
  "kernel": {"kind": "unison", "threads": 8}
}`
	tomlSrc := `
version = 1
name = "t"
seed = 7
stop = "2ms"

[topology]
kind = "fattree"
k = 8
bw_gbps = 25
delay = "1us"

[protocol.tcp]
variant = "dctcp"
delayed_ack = true

[protocol.queue]
kind = "dctcp"
ecn_k = 65

[traffic]
load = 0.5
sizes = "websearch"
end = "1ms"

[kernel]
kind = "unison"
threads = 8
`
	fromJSON, err := ParseScenario([]byte(jsonSrc), "json")
	if err != nil {
		t.Fatal(err)
	}
	fromTOML, err := ParseScenario([]byte(tomlSrc), "toml")
	if err != nil {
		t.Fatal(err)
	}
	a, _ := fromJSON.Marshal()
	b, _ := fromTOML.Marshal()
	if !bytes.Equal(a, b) {
		t.Fatalf("TOML and JSON decode differently:\n--- json ---\n%s\n--- toml ---\n%s", a, b)
	}
}

// TestScenarioTOMLUnknownKey: the unknown-key walk runs on the TOML path
// too, with the same dotted-path error.
func TestScenarioTOMLUnknownKey(t *testing.T) {
	src := "version = 1\nstop = \"2ms\"\n\n[topology]\nkind = \"fattree\"\nbwgbps = 10\n\n[traffic]\nload = 0.3\n"
	_, err := ParseScenario([]byte(src), "toml")
	if err == nil || !strings.Contains(err.Error(), "unknown key topology.bwgbps") {
		t.Fatalf("want topology.bwgbps unknown-key error, got %v", err)
	}
}

// TestScenarioOverridePrecedence: explicitly passed flags override the
// file; everything else keeps the file's values.
func TestScenarioOverridePrecedence(t *testing.T) {
	sc, err := ParseScenario([]byte(`{
  "version": 1, "seed": 7, "stop": "2ms",
  "topology": {"kind": "fattree", "k": 8},
  "traffic": {"load": 0.5},
  "kernel": {"kind": "barrier"}
}`), "json")
	if err != nil {
		t.Fatal(err)
	}
	seed := uint64(99)
	kern := "unison"
	threads := 8
	sc.Override(&Overrides{Seed: &seed, Kernel: &kern, Threads: &threads})
	if sc.Seed != 99 || sc.Kernel.Kind != "unison" || sc.Kernel.Threads != 8 {
		t.Fatalf("overrides not applied: %+v", sc)
	}
	if sc.Topology.K != 8 || sc.Traffic.Load != 0.5 || sim.Time(sc.Stop) != 2*sim.Millisecond {
		t.Fatalf("untouched fields perturbed: %+v", sc)
	}
}

// TestScenarioOverrideCreatesTraffic: workload overrides on a
// collective-only scenario create the traffic section rather than
// panicking on nil.
func TestScenarioOverrideCreatesTraffic(t *testing.T) {
	sc := DefaultScenario()
	sc.Traffic = nil
	sc.Collective = &CollectiveSpec{Pattern: "alltoall", MessageBytes: 1 << 20}
	load := 0.4
	sc.Override(&Overrides{Load: &load})
	if sc.Traffic == nil || sc.Traffic.Load != 0.4 {
		t.Fatalf("load override did not create the traffic section: %+v", sc.Traffic)
	}
}

// TestScenarioValidation covers the load-time rejections that would
// otherwise surface as confusing assembly failures.
func TestScenarioValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Scenario)
		want   string
	}{
		{"no workload", func(sc *Scenario) { sc.Traffic = nil }, "traffic"},
		{"zero stop", func(sc *Scenario) { sc.Stop = 0 }, "stop"},
		{"bad topology", func(sc *Scenario) { sc.Topology.Kind = "hypercube" }, "topology"},
		{"bad kernel", func(sc *Scenario) { sc.Kernel.Kind = "warp" }, "kernel"},
		{"bad incast", func(sc *Scenario) { sc.Traffic.Incast = 1.5 }, "incast"},
		{"negative victim", func(sc *Scenario) { v := -1; sc.Traffic.Victim = &v }, "victim"},
		{"stream nullmsg", func(sc *Scenario) { sc.Traffic.Stream = true; sc.Kernel.Kind = "nullmsg" }, "stream"},
		{"bad collective", func(sc *Scenario) {
			sc.Collective = &CollectiveSpec{Pattern: "broadcast", MessageBytes: 1}
		}, "pattern"},
	}
	for _, tc := range cases {
		sc := DefaultScenario()
		tc.mutate(sc)
		err := sc.Validate()
		if err == nil {
			t.Errorf("%s: validated", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestDurationForms: durations unmarshal from strings and bare
// nanosecond integers, and marshal back as strings.
func TestDurationForms(t *testing.T) {
	var d Duration
	if err := d.UnmarshalJSON([]byte(`"250us"`)); err != nil || sim.Time(d) != 250*sim.Microsecond {
		t.Fatalf("string form: %v %v", d, err)
	}
	if err := d.UnmarshalJSON([]byte(`2000000`)); err != nil || sim.Time(d) != 2*sim.Millisecond {
		t.Fatalf("int form: %v %v", d, err)
	}
	out, err := Duration(2 * sim.Millisecond).MarshalJSON()
	if err != nil || string(out) != `"2ms"` {
		t.Fatalf("marshal: %s %v", out, err)
	}
}

// TestScenarioVictimReachesGenerator: the victim index is resolved to a
// host NodeID with HasVictim set, so host 0 is a legal target.
func TestScenarioVictimReachesGenerator(t *testing.T) {
	sc := DefaultScenario()
	sc.Traffic.Incast = 0.5
	sc.Kernel.Kind = "sequential"
	v := 0
	sc.Traffic.Victim = &v
	b, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.RunKernel(b.Sim.Model()); err != nil {
		t.Fatal(err)
	}
	// Host 0's node must terminate a meaningful share of flows; with the
	// generator default (last host) it would receive almost none.
	target := b.Hosts[0]
	var at, total int
	for i := 0; i < b.Sim.Mon.Flows(); i++ {
		rec := b.Sim.Mon.Sender(packet.FlowID(i))
		if rec.Bytes == 0 {
			continue // never started before stop
		}
		total++
		if rec.Dst == target {
			at++
		}
	}
	if total == 0 || at*3 < total {
		t.Fatalf("victim host 0 received %d/%d flows; incast redirect not applied", at, total)
	}
}
