package app

import (
	"testing"

	"unison/internal/core"
	"unison/internal/des"
	"unison/internal/netdev"
	"unison/internal/routing"
	"unison/internal/sim"
	"unison/internal/tcp"
	"unison/internal/topology"
)

func buildCfg(flows []tcp.FlowSpec, stop sim.Time) Config {
	return Config{
		Seed:   1,
		NetCfg: netdev.DefaultConfig(1),
		TCPCfg: tcp.DefaultConfig(),
		StopAt: stop,
		Flows:  flows,
	}
}

func TestScenarioRunsEndToEnd(t *testing.T) {
	d := topology.BuildDumbbell(2, 1e9, 1e9, 2000, 10_000)
	flows := []tcp.FlowSpec{
		{ID: 0, Src: d.Senders[0], Dst: d.Receivers[0], Bytes: 50_000},
		{ID: 1, Src: d.Senders[1], Dst: d.Receivers[1], Bytes: 50_000, Start: 1000},
	}
	sc := New(d.Graph, routing.NewECMP(d.Graph, routing.Hops, 1), buildCfg(flows, 50*sim.Millisecond))
	st, err := des.New().Run(sc.Model())
	if err != nil {
		t.Fatal(err)
	}
	if sc.Mon.Completed() != 2 {
		t.Fatalf("completed=%d", sc.Mon.Completed())
	}
	if st.EndTime != 50*sim.Millisecond {
		t.Fatalf("end=%v (stop event should define it)", st.EndTime)
	}
}

func TestModelIncludesStopEvent(t *testing.T) {
	d := topology.BuildDumbbell(1, 1e9, 1e9, 2000, 10_000)
	sc := New(d.Graph, routing.NewECMP(d.Graph, routing.Hops, 1), buildCfg(nil, sim.Millisecond))
	m := sc.Model()
	found := false
	for _, ev := range m.Init {
		if ev.Node == sim.GlobalNode && ev.Time == sim.Millisecond {
			found = true
		}
	}
	if !found {
		t.Fatal("no stop global event in Init")
	}
}

func TestScheduleTopoChangeRecomputesRoutes(t *testing.T) {
	d := topology.BuildDumbbell(1, 1e9, 1e9, 2000, 10_000)
	router := routing.NewECMP(d.Graph, routing.Hops, 1)
	flows := []tcp.FlowSpec{{ID: 0, Src: d.Senders[0], Dst: d.Receivers[0], Bytes: 50_000}}
	sc := New(d.Graph, router, buildCfg(flows, 100*sim.Millisecond))
	fired := false
	sc.ScheduleTopoChange(5*sim.Millisecond, func() {
		fired = true
		// A no-op mutation; the hook must still run and recompute.
	})
	if _, err := des.New().Run(sc.Model()); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("topology-change hook did not fire")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	d := topology.BuildDumbbell(1, 1e9, 1e9, 2000, 10_000)
	defer func() {
		if recover() == nil {
			t.Fatal("zero StopAt accepted")
		}
	}()
	New(d.Graph, routing.NewECMP(d.Graph, routing.Hops, 1), Config{})
}

func TestExtraFlowSlots(t *testing.T) {
	d := topology.BuildDumbbell(1, 1e9, 1e9, 2000, 10_000)
	cfg := buildCfg(nil, sim.Millisecond)
	cfg.ExtraFlowSlots = 3
	sc := New(d.Graph, routing.NewECMP(d.Graph, routing.Hops, 1), cfg)
	if sc.Mon.Flows() != 3 {
		t.Fatalf("monitor flows=%d", sc.Mon.Flows())
	}
}

func TestEnableProgress(t *testing.T) {
	d := topology.BuildDumbbell(1, 1e9, 1e9, 2000, 10_000)
	sc := New(d.Graph, routing.NewECMP(d.Graph, routing.Hops, 1), buildCfg(nil, 10*sim.Millisecond))
	var ticks []sim.Time
	sc.EnableProgress(3*sim.Millisecond, func(now sim.Time) { ticks = append(ticks, now) })
	if _, err := des.New().Run(sc.Model()); err != nil {
		t.Fatal(err)
	}
	if len(ticks) != 3 {
		t.Fatalf("ticks=%v, want 3/6/9ms", ticks)
	}
	for i, want := range []sim.Time{3 * sim.Millisecond, 6 * sim.Millisecond, 9 * sim.Millisecond} {
		if ticks[i] != want {
			t.Fatalf("tick %d at %v, want %v", i, ticks[i], want)
		}
	}
}

func TestEnableProgressUnderUnison(t *testing.T) {
	// Progress events run on the public LP with workers quiescent.
	d := topology.BuildDumbbell(2, 1e9, 1e9, 2000, 10_000)
	flows := []tcp.FlowSpec{{ID: 0, Src: d.Senders[0], Dst: d.Receivers[0], Bytes: 100_000}}
	sc := New(d.Graph, routing.NewECMP(d.Graph, routing.Hops, 1), buildCfg(flows, 10*sim.Millisecond))
	ticks := 0
	sc.EnableProgress(2*sim.Millisecond, func(sim.Time) { ticks++ })
	if _, err := core.New(core.Config{Threads: 4}).Run(sc.Model()); err != nil {
		t.Fatal(err)
	}
	if ticks != 4 {
		t.Fatalf("ticks=%d, want 4", ticks)
	}
	if !sc.Mon.Sender(0).Done {
		t.Fatal("flow did not complete alongside progress events")
	}
}
