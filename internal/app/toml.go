package app

import (
	"fmt"
	"strconv"
	"strings"
)

// parseTOML reads the TOML subset scenario files use into nested
// map[string]any, mirroring the shape json.Unmarshal produces so one
// schema walk (checkUnknownKeys) and one decode path serve both formats.
//
// Supported: [a.b] table headers, key = value pairs with bare or quoted
// keys, basic strings, integers, floats, booleans, single-line arrays,
// and # comments. Deliberately out of scope (scenario files don't need
// them): multi-line strings/arrays, inline tables, arrays of tables,
// dates, and dotted keys on the left of =.
func parseTOML(data []byte) (map[string]any, error) {
	root := map[string]any{}
	cur := root
	for ln, line := range strings.Split(string(data), "\n") {
		s := strings.TrimSpace(stripTOMLComment(line))
		if s == "" {
			continue
		}
		if strings.HasPrefix(s, "[") {
			if !strings.HasSuffix(s, "]") || strings.HasPrefix(s, "[[") {
				return nil, fmt.Errorf("toml line %d: malformed table header %q", ln+1, s)
			}
			path := strings.TrimSpace(s[1 : len(s)-1])
			if path == "" {
				return nil, fmt.Errorf("toml line %d: empty table header", ln+1)
			}
			t := root
			for _, part := range strings.Split(path, ".") {
				key, err := tomlKey(strings.TrimSpace(part))
				if err != nil {
					return nil, fmt.Errorf("toml line %d: %v", ln+1, err)
				}
				child, ok := t[key]
				if !ok {
					m := map[string]any{}
					t[key] = m
					t = m
					continue
				}
				m, ok := child.(map[string]any)
				if !ok {
					return nil, fmt.Errorf("toml line %d: %q redefines a value as a table", ln+1, path)
				}
				t = m
			}
			cur = t
			continue
		}
		k, v, ok := strings.Cut(s, "=")
		if !ok {
			return nil, fmt.Errorf("toml line %d: expected key = value, got %q", ln+1, s)
		}
		key, err := tomlKey(strings.TrimSpace(k))
		if err != nil {
			return nil, fmt.Errorf("toml line %d: %v", ln+1, err)
		}
		val, err := tomlValue(strings.TrimSpace(v))
		if err != nil {
			return nil, fmt.Errorf("toml line %d: %v", ln+1, err)
		}
		if _, dup := cur[key]; dup {
			return nil, fmt.Errorf("toml line %d: duplicate key %q", ln+1, key)
		}
		cur[key] = val
	}
	return root, nil
}

// stripTOMLComment removes a trailing # comment, respecting quotes.
func stripTOMLComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			if !inStr || i == 0 || line[i-1] != '\\' {
				inStr = !inStr
			}
		case '#':
			if !inStr {
				return line[:i]
			}
		}
	}
	return line
}

func tomlKey(s string) (string, error) {
	if s == "" {
		return "", fmt.Errorf("empty key")
	}
	if s[0] == '"' {
		return strconv.Unquote(s)
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == '-' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if !ok {
			return "", fmt.Errorf("bad bare key %q", s)
		}
	}
	return s, nil
}

func tomlValue(s string) (any, error) {
	switch {
	case s == "":
		return nil, fmt.Errorf("missing value")
	case s == "true":
		return true, nil
	case s == "false":
		return false, nil
	case s[0] == '"':
		return strconv.Unquote(s)
	case s[0] == '[':
		if !strings.HasSuffix(s, "]") {
			return nil, fmt.Errorf("unterminated array %q", s)
		}
		inner := strings.TrimSpace(s[1 : len(s)-1])
		if inner == "" {
			return []any{}, nil
		}
		var out []any
		for _, part := range splitTOMLArray(inner) {
			v, err := tomlValue(strings.TrimSpace(part))
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	}
	if n, err := strconv.ParseInt(strings.ReplaceAll(s, "_", ""), 10, 64); err == nil {
		return n, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return nil, fmt.Errorf("bad value %q (strings must be quoted)", s)
}

// splitTOMLArray splits on commas outside quotes and nested brackets.
func splitTOMLArray(s string) []string {
	var parts []string
	depth, inStr, last := 0, false, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if !inStr || i == 0 || s[i-1] != '\\' {
				inStr = !inStr
			}
		case '[':
			if !inStr {
				depth++
			}
		case ']':
			if !inStr {
				depth--
			}
		case ',':
			if !inStr && depth == 0 {
				parts = append(parts, s[last:i])
				last = i + 1
			}
		}
	}
	parts = append(parts, s[last:])
	return parts
}
