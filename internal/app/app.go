// Package app assembles complete simulation scenarios: topology + routing
// + data plane + transport + workload + model. It is the layer example
// programs and the experiment harness build on.
//
// The central user-transparency property: a Sim is constructed once,
// with zero partitioning or parallelism configuration, and the resulting
// sim.Model runs unmodified under any kernel.
package app

import (
	"fmt"

	"unison/internal/coll"
	"unison/internal/flowmon"
	"unison/internal/netdev"
	"unison/internal/netobs"
	"unison/internal/packet"
	"unison/internal/routing"
	"unison/internal/sim"
	"unison/internal/tcp"
	"unison/internal/topology"
	"unison/internal/trace"
)

// Sim binds the pieces of one simulation.
type Sim struct {
	G      *topology.Graph
	Router routing.Router
	Net    *netdev.Network
	Stack  *tcp.Stack
	Mon    *flowmon.Monitor
	Setup  *sim.Setup
	Flows  []tcp.FlowSpec
	StopAt sim.Time

	// Coll is the collective-communication engine when Config.Coll asked
	// for one; nil otherwise. Its flows are numbered CollBase onward.
	Coll     *coll.Engine
	CollBase packet.FlowID

	cfg       Config
	flowSrc   tcp.FlowSource
	finalized bool
}

// Config selects scenario-level options.
type Config struct {
	Seed   uint64
	NetCfg netdev.Config
	TCPCfg tcp.Config
	StopAt sim.Time
	Flows  []tcp.FlowSpec
	// ExtraFlowSlots reserves additional monitor records beyond Flows
	// (for flows injected by custom setup events).
	ExtraFlowSlots int

	// FlowSrc, when set, replaces Flows with a streaming workload: flow
	// specs are pulled on demand during the run instead of being
	// materialized up front, keeping workload memory O(window) instead of
	// O(flows). Requires a kernel with global-event support (sequential,
	// Unison, hybrid, barrier, virtual testbed). Mutually exclusive with
	// Flows.
	FlowSrc tcp.FlowSource
	// FlowCount sizes the flow monitor when FlowSrc is set (the number of
	// flows the source will emit, e.g. traffic.Count). Flow IDs at or
	// beyond FlowCount+ExtraFlowSlots spill into the monitor's straggler
	// overflow, so an underestimate degrades memory, not correctness.
	FlowCount int
	// StreamWindow is the pull-ahead horizon for FlowSrc (0 uses
	// tcp.DefaultStreamWindow).
	StreamWindow sim.Time

	// Coll, when set, adds a collective-communication workload (see
	// internal/coll) on top of Flows/FlowSrc. Its flows are numbered
	// after the traffic flows, before ExtraFlowSlots.
	Coll *coll.Config
}

// New assembles a scenario over g with the given router.
func New(g *topology.Graph, router routing.Router, cfg Config) *Sim {
	if err := g.Validate(); err != nil {
		panic(fmt.Sprintf("app: %v", err))
	}
	if cfg.StopAt <= 0 {
		panic("app: StopAt must be positive")
	}
	if cfg.FlowSrc != nil && len(cfg.Flows) > 0 {
		panic("app: Flows and FlowSrc are mutually exclusive")
	}
	slots := cfg.FlowCount
	if cfg.FlowSrc == nil {
		maxID := -1
		for _, f := range cfg.Flows {
			if int(f.ID) > maxID {
				maxID = int(f.ID)
			}
		}
		slots = maxID + 1
	}
	var pat *coll.Pattern
	if cfg.Coll != nil {
		var err error
		if pat, err = coll.New(*cfg.Coll); err != nil {
			panic(fmt.Sprintf("app: %v", err))
		}
	}
	collFlows := 0
	if pat != nil {
		collFlows = pat.Flows
	}
	mon := flowmon.NewMonitor(slots + collFlows + cfg.ExtraFlowSlots)
	net := netdev.New(g, router, cfg.NetCfg)
	stack := tcp.NewStack(net, cfg.TCPCfg, mon)
	s := &Sim{
		G:      g,
		Router: router,
		Net:    net,
		Stack:  stack,
		Mon:    mon,
		Setup:  sim.NewSetup(),
		Flows:  cfg.Flows,
		StopAt: cfg.StopAt,

		cfg:     cfg,
		flowSrc: cfg.FlowSrc,
	}
	if cfg.FlowSrc != nil {
		stack.AttachStream(s.Setup, cfg.FlowSrc, cfg.StreamWindow)
	} else {
		stack.Attach(s.Setup, cfg.Flows)
	}
	if pat != nil {
		s.CollBase = packet.FlowID(slots)
		s.Coll = coll.NewEngine(pat, stack, s.CollBase)
		s.Coll.Install(s.Setup)
	}
	return s
}

// CollReport computes the collective completion report from the run's
// monitor, or nil when the Sim has no collective workload. Pass a merged
// monitor to build the distributed coordinator's identical section.
func (s *Sim) CollReport(mon *flowmon.Monitor) *coll.Report {
	if s.Coll == nil {
		return nil
	}
	return coll.BuildReport(s.Coll.Pattern(), s.CollBase, mon)
}

// Model finalizes the scenario (adding the global stop event) and returns
// the kernel-agnostic model. Call at most once.
func (s *Sim) Model() *sim.Model {
	if !s.finalized {
		s.finalized = true
		e := &stopEvt{}
		s.Setup.GlobalDesc(s.StopAt, func(ctx *sim.Ctx) { ctx.Stop() }, e)
	}
	m := &sim.Model{
		Nodes:  s.G.N(),
		Links:  s.G.LinkInfos,
		Init:   s.Setup.Events(),
		StopAt: s.StopAt,
	}
	if err := m.Validate(); err != nil {
		panic(fmt.Sprintf("app: %v", err))
	}
	return m
}

// EnableNetObs turns on the full simulated-network observability stack:
// a packet-trace collector (perNodeCap records per node, 0 = unlimited)
// and a queue/link sampler with the given bucket interval (<= 0 uses
// netobs.DefaultInterval). Call before Model; both collectors ride the
// deterministic event stream, so their merged output is identical across
// kernels. Returns the collector and sampler for post-run export.
func (s *Sim) EnableNetObs(interval sim.Time, perNodeCap int) (*trace.Collector, *netobs.Sampler) {
	if s.Net.Tracer == nil {
		s.Net.Tracer = trace.NewCollector(s.G.N(), perNodeCap)
	}
	sampler := s.Net.Sampler()
	if sampler == nil {
		sampler = netobs.NewSampler(netobs.SamplerConfig{Interval: interval})
		s.Net.AttachSampler(sampler)
	}
	return s.Net.Tracer, sampler
}

// ScheduleTopoChange registers a global event at t that applies mutate to
// the topology and refreshes routing — the reconfigurable-DCN primitive.
// Kernels observe the topology version change and recompute lookahead.
func (s *Sim) ScheduleTopoChange(t sim.Time, mutate func()) {
	s.Setup.Global(t, func(ctx *sim.Ctx) {
		mutate()
		s.Router.Recompute()
	})
}

// EnableProgress schedules a self-rescheduling global progress event every
// interval — the paper's third global-event use case ("printing the
// simulation progress", §4.2). fn runs on the public LP with all workers
// quiescent.
func (s *Sim) EnableProgress(interval sim.Time, fn func(now sim.Time)) {
	if interval <= 0 {
		panic("app: progress interval must be positive")
	}
	stop := s.StopAt
	var tick sim.Proc
	tick = func(ctx *sim.Ctx) {
		fn(ctx.Now())
		if next := ctx.Now() + interval; next < stop {
			ctx.ScheduleGlobal(next, tick)
		}
	}
	s.Setup.Global(interval, tick)
}
