package app

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"time"

	"unison/internal/sim"
)

// A Scenario is the declarative description of one simulation: topology,
// workload (statistical traffic and/or a collective), protocol stack,
// kernel and artifact knobs, loadable from a single JSON or TOML file.
// It is the one documented contract all four CLIs (unisim, unibench,
// uniexp, unidist) consume through their shared -scenario flag; per-CLI
// flags are overrides layered on top (Overrides). Build resolves a
// Scenario into a runnable Sim.
//
// Versioning: Version is required and must equal SchemaVersion. The
// schema evolves by adding optional keys under the same version; keys are
// never renamed or repurposed. Unknown keys are rejected with their full
// path (so a file written for a newer schema fails loudly instead of
// silently dropping settings), and a version bump is reserved for
// incompatible changes.
type Scenario struct {
	// Version is the schema version; required, currently 1.
	Version int `json:"version"`
	// Name labels the scenario in reports and artifact metadata.
	Name string `json:"name,omitempty"`
	// Seed feeds every random stream (traffic, ECMP hashing, RED).
	Seed uint64 `json:"seed,omitempty"`
	// Stop is the simulated duration; required.
	Stop Duration `json:"stop"`

	Topology TopologySpec `json:"topology"`
	Routing  RoutingSpec  `json:"routing,omitempty"`
	Protocol ProtocolSpec `json:"protocol,omitempty"`
	// Traffic describes the statistical background workload; optional
	// when a Collective is present.
	Traffic *TrafficSpec `json:"traffic,omitempty"`
	// Collective adds a collective-communication workload (internal/coll)
	// on top of Traffic; optional when Traffic is present.
	Collective *CollectiveSpec `json:"collective,omitempty"`
	Kernel     KernelSpec      `json:"kernel,omitempty"`
	Artifacts  ArtifactSpec    `json:"artifacts,omitempty"`
}

// SchemaVersion is the scenario schema version this build reads/writes.
const SchemaVersion = 1

// TopologySpec selects and parameterizes the network topology.
type TopologySpec struct {
	// Kind: fattree | torus | bcube | spineleaf | dumbbell | geant | chinanet.
	Kind string `json:"kind"`
	// K is the fat-tree arity (default 4).
	K int `json:"k,omitempty"`
	// Rows/Cols size the torus (default 6x6).
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// N is the bcube port count / dumbbell pair count / spine-leaf hosts
	// per leaf (default 4).
	N int `json:"n,omitempty"`
	// Spines/Leaves size the spine-leaf fabric (default 2x4).
	Spines int `json:"spines,omitempty"`
	Leaves int `json:"leaves,omitempty"`
	// BwGbps is the link bandwidth in Gbit/s (default 10).
	BwGbps float64 `json:"bw_gbps,omitempty"`
	// Delay is the per-link propagation delay (default 3µs).
	Delay Duration `json:"delay,omitempty"`
}

// RoutingSpec selects the routing protocol.
type RoutingSpec struct {
	// Kind: ecmp (default) | nix | rip.
	Kind string `json:"kind,omitempty"`
	// Metric: hops (default) | delay. Ignored by rip.
	Metric string `json:"metric,omitempty"`
	// Period is the RIP advertisement period (default 20ms).
	Period Duration `json:"period,omitempty"`
}

// ProtocolSpec tunes transport and queueing.
type ProtocolSpec struct {
	TCP   TCPSpec   `json:"tcp,omitempty"`
	Queue QueueSpec `json:"queue,omitempty"`
	// ChecksumWork enables the per-byte processing cost model (default
	// true; explicit false disables it).
	ChecksumWork *bool `json:"checksum_work,omitempty"`
}

// TCPSpec tunes the transport; zero values keep the profile defaults.
type TCPSpec struct {
	// Variant: newreno (default) | dctcp.
	Variant string `json:"variant,omitempty"`
	// WAN selects the wide-area profile (200ms RTO floor).
	WAN bool `json:"wan,omitempty"`
	// MinRTO overrides the RTO floor.
	MinRTO Duration `json:"min_rto,omitempty"`
	// InitCwnd overrides the initial window (segments).
	InitCwnd int32 `json:"init_cwnd,omitempty"`
	// DelayedAck enables/disables ACK coalescing.
	DelayedAck *bool `json:"delayed_ack,omitempty"`
	// AckDelay overrides the delayed-ACK timeout.
	AckDelay Duration `json:"ack_delay,omitempty"`
	// RcvBuf enables receive-window flow control (bytes).
	RcvBuf int32 `json:"rcv_buf,omitempty"`
}

// QueueSpec selects the per-device queue discipline.
type QueueSpec struct {
	// Kind: droptail (default) | red | dctcp | pfifo | codel.
	Kind string `json:"kind,omitempty"`
	// MaxPkts is the queue capacity in packets (default 100).
	MaxPkts int `json:"max_pkts,omitempty"`
	// EcnK is the DCTCP step-marking threshold in packets (default 20).
	EcnK float64 `json:"ecn_k,omitempty"`
	// ECN makes RED mark instead of drop.
	ECN *bool `json:"ecn,omitempty"`
}

// TrafficSpec parameterizes the statistical workload generator.
type TrafficSpec struct {
	// Load is the offered load as a fraction of bisection bandwidth;
	// required (positive) when the traffic section is present.
	Load float64 `json:"load"`
	// Sizes: grpc (default) | websearch flow-size CDF.
	Sizes string `json:"sizes,omitempty"`
	// Pattern: uniform (default) | permutation.
	Pattern string `json:"pattern,omitempty"`
	// Incast redirects this fraction of flows to the victim host.
	Incast float64 `json:"incast,omitempty"`
	// Victim is the incast victim as a host index (0-based position in
	// the topology's host list). Present means explicitly chosen — host
	// 0 included; absent picks the generator default (last host).
	Victim *int `json:"victim,omitempty"`
	// Start/End bracket the arrival window (defaults 0 and 3/4 of stop).
	Start Duration `json:"start,omitempty"`
	End   Duration `json:"end,omitempty"`
	// Stream generates the workload lazily as virtual time advances
	// (O(window) memory; needs a kernel with global-event support, so
	// not nullmsg/vnullmsg or the distributed runtime).
	Stream bool `json:"stream,omitempty"`
	// StreamWindow is the streaming pull-ahead horizon (default 100µs).
	StreamWindow Duration `json:"stream_window,omitempty"`
}

// CollectiveSpec parameterizes the collective workload (internal/coll).
type CollectiveSpec struct {
	// Pattern: ring-allreduce | tree-allreduce | alltoall | paramserver.
	Pattern string `json:"pattern"`
	// Participants is the number of hosts taking part, in topology host
	// order (default: every host; rank 0 is the tree root / parameter
	// server).
	Participants int `json:"participants,omitempty"`
	// MessageBytes is each participant's message size; required.
	MessageBytes int64 `json:"message_bytes"`
	// ChunkBytes pipelines transfers larger than this (0: no chunking).
	ChunkBytes int64 `json:"chunk_bytes,omitempty"`
	// Start is the collective's launch time.
	Start Duration `json:"start,omitempty"`
	// StepDelay models per-step framework launch overhead.
	StepDelay Duration `json:"step_delay,omitempty"`
	// Iters repeats the paramserver push/pull cycle (default 1).
	Iters int `json:"iters,omitempty"`
}

// KernelSpec selects the kernel the run executes under.
type KernelSpec struct {
	// Kind: sequential | unison (default) | hybrid | barrier | nullmsg |
	// vseq | vbarrier | vnullmsg | vunison.
	Kind string `json:"kind,omitempty"`
	// Threads is the worker count (unison/hybrid/virtual cores, default 4).
	Threads int `json:"threads,omitempty"`
	// Ranks is the manual-partition LP count for barrier/nullmsg/dist
	// (default: the topology's recipe default, e.g. k for a fat-tree).
	Ranks int `json:"ranks,omitempty"`
}

// ArtifactSpec tunes run artifacts.
type ArtifactSpec struct {
	// Dir is the artifact bundle directory ("" disables artifacts).
	Dir string `json:"dir,omitempty"`
	// Trace enables the packet trace inside the bundle.
	Trace bool `json:"trace,omitempty"`
	// Interval is the sampler bucket width (default 10µs).
	Interval Duration `json:"interval,omitempty"`
}

// Duration is a sim.Time that marshals as a human-readable duration
// string ("250us", "2ms") and unmarshals from either such a string or a
// bare integer nanosecond count.
type Duration sim.Time

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		td, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("bad duration %q: %w", s, err)
		}
		*d = Duration(td.Nanoseconds())
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*d = Duration(n)
	return nil
}

// T converts to simulated time.
func (d Duration) T() sim.Time { return sim.Time(d) }

// DefaultScenario returns the baseline scenario the CLIs start from when
// no -scenario file is given: a k=4 fat-tree under 30% gRPC load on the
// Unison kernel — the historical flag defaults.
func DefaultScenario() *Scenario {
	return &Scenario{
		Version:  SchemaVersion,
		Seed:     42,
		Stop:     Duration(2 * sim.Millisecond),
		Topology: TopologySpec{Kind: "fattree", K: 4, BwGbps: 10, Delay: Duration(3 * sim.Microsecond)},
		Traffic:  &TrafficSpec{Load: 0.3, Sizes: "grpc"},
		Kernel:   KernelSpec{Kind: "unison", Threads: 4},
	}
}

// LoadScenario reads and parses path; the format follows the extension
// (.toml for TOML, JSON otherwise).
func LoadScenario(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	format := "json"
	if strings.EqualFold(filepath.Ext(path), ".toml") {
		format = "toml"
	}
	sc, err := ParseScenario(data, format)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}

// ParseScenario parses scenario data in the given format ("json" or
// "toml"). Unknown keys are rejected with their full path.
func ParseScenario(data []byte, format string) (*Scenario, error) {
	var jsonData []byte
	switch format {
	case "json":
		jsonData = data
	case "toml":
		raw, err := parseTOML(data)
		if err != nil {
			return nil, err
		}
		jsonData, err = json.Marshal(raw)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("scenario: unknown format %q (want json or toml)", format)
	}
	var raw any
	dec := json.NewDecoder(bytes.NewReader(jsonData))
	dec.UseNumber()
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := checkUnknownKeys(raw, reflect.TypeOf(Scenario{}), ""); err != nil {
		return nil, err
	}
	sc := &Scenario{}
	if err := json.Unmarshal(jsonData, sc); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// Marshal renders the scenario in canonical form: indented JSON with the
// schema's field order and a trailing newline. The output is stable —
// marshal(parse(marshal(sc))) == marshal(sc) — which is what lets tests
// and tooling diff scenarios byte-wise.
func (sc *Scenario) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(sc, "", "  ") //unison:json-ok scenario floats come from parsed JSON or defaults, both finite
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Save writes the scenario to path in canonical form.
func (sc *Scenario) Save(path string) error {
	b, err := sc.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// checkUnknownKeys walks decoded JSON against the schema struct's json
// tags and reports the first unknown key with its dotted path.
func checkUnknownKeys(v any, t reflect.Type, path string) error {
	m, ok := v.(map[string]any)
	if !ok {
		return nil
	}
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	if t.Kind() != reflect.Struct {
		return nil
	}
	fields := make(map[string]reflect.Type, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		name, _, _ := strings.Cut(f.Tag.Get("json"), ",")
		if name == "" {
			name = f.Name
		}
		if name != "-" {
			fields[name] = f.Type
		}
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		full := k
		if path != "" {
			full = path + "." + k
		}
		ft, ok := fields[k]
		if !ok {
			return fmt.Errorf("scenario: unknown key %s", full)
		}
		for ft.Kind() == reflect.Pointer {
			ft = ft.Elem()
		}
		if ft.Kind() == reflect.Slice {
			if items, ok := m[k].([]any); ok {
				for i, item := range items {
					if err := checkUnknownKeys(item, ft.Elem(), fmt.Sprintf("%s[%d]", full, i)); err != nil {
						return err
					}
				}
			}
			continue
		}
		if err := checkUnknownKeys(m[k], ft, full); err != nil {
			return err
		}
	}
	return nil
}

// Validate checks structural consistency: version, required sections,
// and enum values. Build revalidates, so hand-constructed scenarios can
// skip the explicit call.
func (sc *Scenario) Validate() error {
	if sc.Version == 0 {
		return fmt.Errorf("scenario: missing version (current schema is %d)", SchemaVersion)
	}
	if sc.Version != SchemaVersion {
		return fmt.Errorf("scenario: version %d is not supported (this build reads %d)", sc.Version, SchemaVersion)
	}
	if sc.Stop <= 0 {
		return fmt.Errorf("scenario: stop must be a positive duration")
	}
	if sc.Traffic == nil && sc.Collective == nil {
		return fmt.Errorf("scenario: needs a traffic and/or collective section")
	}
	switch sc.Topology.Kind {
	case "fattree", "torus", "bcube", "spineleaf", "dumbbell", "geant", "chinanet":
	case "":
		return fmt.Errorf("scenario: missing topology.kind")
	default:
		return fmt.Errorf("scenario: unknown topology.kind %q", sc.Topology.Kind)
	}
	switch sc.Routing.Kind {
	case "", "ecmp", "nix", "rip":
	default:
		return fmt.Errorf("scenario: unknown routing.kind %q", sc.Routing.Kind)
	}
	switch sc.Routing.Metric {
	case "", "hops", "delay":
	default:
		return fmt.Errorf("scenario: unknown routing.metric %q", sc.Routing.Metric)
	}
	switch sc.Protocol.TCP.Variant {
	case "", "newreno", "dctcp":
	default:
		return fmt.Errorf("scenario: unknown protocol.tcp.variant %q", sc.Protocol.TCP.Variant)
	}
	switch sc.Protocol.Queue.Kind {
	case "", "droptail", "red", "dctcp", "pfifo", "codel":
	default:
		return fmt.Errorf("scenario: unknown protocol.queue.kind %q", sc.Protocol.Queue.Kind)
	}
	if t := sc.Traffic; t != nil {
		if t.Load <= 0 {
			return fmt.Errorf("scenario: traffic.load must be positive")
		}
		switch t.Sizes {
		case "", "grpc", "websearch":
		default:
			return fmt.Errorf("scenario: unknown traffic.sizes %q", t.Sizes)
		}
		switch t.Pattern {
		case "", "uniform", "permutation":
		default:
			return fmt.Errorf("scenario: unknown traffic.pattern %q", t.Pattern)
		}
		if t.Incast < 0 || t.Incast > 1 {
			return fmt.Errorf("scenario: traffic.incast must be in [0,1]")
		}
		if t.Victim != nil && *t.Victim < 0 {
			return fmt.Errorf("scenario: traffic.victim must be a host index >= 0")
		}
	}
	if c := sc.Collective; c != nil {
		switch c.Pattern {
		case "ring-allreduce", "tree-allreduce", "alltoall", "paramserver":
		case "":
			return fmt.Errorf("scenario: missing collective.pattern")
		default:
			return fmt.Errorf("scenario: unknown collective.pattern %q", c.Pattern)
		}
		if c.MessageBytes <= 0 {
			return fmt.Errorf("scenario: collective.message_bytes must be positive")
		}
		if c.Participants < 0 || c.Participants == 1 {
			return fmt.Errorf("scenario: collective.participants must be >= 2 (or 0 for all hosts)")
		}
	}
	switch sc.Kernel.Kind {
	case "", "sequential", "seq", "unison", "hybrid", "barrier", "nullmsg",
		"vseq", "vbarrier", "vnullmsg", "vunison":
	default:
		return fmt.Errorf("scenario: unknown kernel.kind %q", sc.Kernel.Kind)
	}
	if sc.Traffic != nil && sc.Traffic.Stream {
		switch sc.Kernel.Kind {
		case "nullmsg", "vnullmsg":
			return fmt.Errorf("scenario: traffic.stream needs a kernel with global-event support; %s has none", sc.Kernel.Kind)
		}
	}
	return nil
}

// Overrides layers per-CLI flag values over a scenario: a nil field
// keeps the file's value, a set one replaces it — the flag-precedence
// contract all four CLIs share. Workload fields applied to a scenario
// without a traffic section create one.
type Overrides struct {
	Seed    *uint64
	Stop    *sim.Time
	Kernel  *string
	Threads *int
	Ranks   *int

	Topo   *string
	K      *int
	Rows   *int
	Cols   *int
	N      *int
	BwGbps *float64
	Delay  *sim.Time

	Load   *float64
	Incast *float64
	Victim *int
	Sizes  *string
	Stream *bool

	ArtifactsDir *string
	Trace        *bool
}

// Override applies o to the scenario in place.
func (sc *Scenario) Override(o *Overrides) {
	if o == nil {
		return
	}
	if o.Seed != nil {
		sc.Seed = *o.Seed
	}
	if o.Stop != nil {
		sc.Stop = Duration(*o.Stop)
	}
	if o.Kernel != nil {
		sc.Kernel.Kind = *o.Kernel
	}
	if o.Threads != nil {
		sc.Kernel.Threads = *o.Threads
	}
	if o.Ranks != nil {
		sc.Kernel.Ranks = *o.Ranks
	}
	if o.Topo != nil {
		sc.Topology.Kind = *o.Topo
	}
	if o.K != nil {
		sc.Topology.K = *o.K
	}
	if o.Rows != nil {
		sc.Topology.Rows = *o.Rows
	}
	if o.Cols != nil {
		sc.Topology.Cols = *o.Cols
	}
	if o.N != nil {
		sc.Topology.N = *o.N
	}
	if o.BwGbps != nil {
		sc.Topology.BwGbps = *o.BwGbps
	}
	if o.Delay != nil {
		sc.Topology.Delay = Duration(*o.Delay)
	}
	if o.Load != nil || o.Incast != nil || o.Victim != nil || o.Sizes != nil || o.Stream != nil {
		if sc.Traffic == nil {
			sc.Traffic = &TrafficSpec{Load: 0.3}
		}
		t := sc.Traffic
		if o.Load != nil {
			t.Load = *o.Load
		}
		if o.Incast != nil {
			t.Incast = *o.Incast
		}
		if o.Victim != nil {
			v := *o.Victim
			t.Victim = &v
		}
		if o.Sizes != nil {
			t.Sizes = *o.Sizes
		}
		if o.Stream != nil {
			t.Stream = *o.Stream
		}
	}
	if o.ArtifactsDir != nil {
		sc.Artifacts.Dir = *o.ArtifactsDir
	}
	if o.Trace != nil {
		sc.Artifacts.Trace = *o.Trace
	}
}
