package app

import (
	"fmt"
	"hash/fnv"
	"path/filepath"
	"time"

	"unison/internal/ckpt"
	"unison/internal/obs"
	"unison/internal/sim"
)

// kindStop is the descriptor kind of the scenario's global stop event
// (the 0x03xx range belongs to internal/app, see internal/ckpt).
const kindStop uint16 = 0x0301

// stopEvt is the stop global's descriptor: the event carries no payload
// beyond its timestamp, which lives in the sim.Event itself.
type stopEvt struct{}

func (stopEvt) CkptKind() uint16             { return kindStop }
func (stopEvt) CkptEncode(buf []byte) []byte { return buf }

// DecodeEvent implements ckpt.EventDecoder for the app-owned descriptor
// kinds. Globals scheduled by EnableProgress and ScheduleTopoChange carry
// no descriptors — a run using them cannot be checkpointed and the save
// reports ckpt.NoDesc (DESIGN.md §11 lists the exclusions).
func (s *Sim) DecodeEvent(kind uint16, d *ckpt.Dec) (sim.Proc, sim.EvDesc, bool, error) {
	if kind != kindStop {
		return nil, nil, false, nil
	}
	return func(ctx *sim.Ctx) { ctx.Stop() }, &stopEvt{}, true, nil
}

// ConfigHash digests everything a checkpoint does NOT carry — topology
// shape, seeds, queue/transport configuration, workload identity, stop
// time — so a restore into a differently built scenario fails fast
// instead of silently diverging. The hash only needs to be stable within
// one build of the simulator (checkpoints are crash-recovery artifacts,
// not archival data), so it digests the printed form of the plain-data
// config structs.
func (s *Sim) ConfigHash() uint64 {
	h := fnv.New64a()
	cfg := &s.cfg
	fmt.Fprintf(h, "nodes=%d links=%d seed=%d stop=%d extra=%d count=%d win=%d stream=%t",
		s.G.N(), len(s.G.LinkInfos()), cfg.Seed, cfg.StopAt,
		cfg.ExtraFlowSlots, cfg.FlowCount, cfg.StreamWindow, cfg.FlowSrc != nil)
	fmt.Fprintf(h, "|net=%+v|tcp=%+v", cfg.NetCfg, cfg.TCPCfg)
	if cfg.Coll != nil {
		fmt.Fprintf(h, "|coll=%+v", *cfg.Coll)
	}
	for i := range cfg.Flows {
		f := &cfg.Flows[i]
		fmt.Fprintf(h, "|%d:%d>%d:%d@%d", f.ID, f.Src, f.Dst, f.Bytes, f.Start)
	}
	return h.Sum64()
}

// CkptTarget assembles the checkpoint target over the scenario's wired
// layers. Call it on the original run (to save) or on a freshly built,
// identically configured scenario (to restore into). The layer list is
// ordered and must stay stable across both sides: netdev, tcp, the
// collective engine (when configured), the workload stream (when
// streaming), flowmon, then the optional observability collectors.
func (s *Sim) CkptTarget() *ckpt.Target {
	t := &ckpt.Target{
		ConfigHash: s.ConfigHash(),
		Layers:     []ckpt.Checkpointer{s.Net, s.Stack},
		Decoders:   []ckpt.EventDecoder{s.Net, s.Stack, s},
	}
	if s.Coll != nil {
		t.Layers = append(t.Layers, s.Coll)
	}
	if c, ok := s.flowSrc.(ckpt.Checkpointer); ok {
		t.Layers = append(t.Layers, c)
	}
	t.Layers = append(t.Layers, s.Mon)
	if s.Net.Tracer != nil {
		t.Layers = append(t.Layers, s.Net.Tracer)
	}
	if sam := s.Net.Sampler(); sam != nil {
		t.Layers = append(t.Layers, sam)
	}
	return t
}

// CheckpointPath returns the snapshot filename for round r in dir.
func CheckpointPath(dir string, r uint64) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-r%09d.uckpt", r))
}

// EnableCheckpoints arms periodic snapshots on m: every `every`
// synchronization rounds (and, for the null-message kernel, at every
// multiple of everyTime) the kernel quiesces and writes
// dir/ckpt-r<round>.uckpt atomically through t. A non-nil probe receives
// one RoundRecord per snapshot carrying its duration and size.
func EnableCheckpoints(m *sim.Model, t *ckpt.Target, dir string, every uint64, everyTime sim.Time, probe obs.Probe) {
	if m.Ckpt == nil {
		m.Ckpt = &sim.CkptHook{}
	}
	m.Ckpt.Every = every
	m.Ckpt.EveryTime = everyTime
	m.Ckpt.Save = func(ks *sim.KernelState) error {
		start := time.Now() //unison:wallclock-ok checkpoint duration telemetry for obs.RoundRecord.CkptNS
		n, err := t.Save(CheckpointPath(dir, ks.Round), ks)
		if err != nil {
			return err
		}
		if probe != nil {
			rec := obs.RoundRecord{
				Round: ks.Round, LBTS: ks.Now,
				CkptNS:    time.Since(start).Nanoseconds(), //unison:wallclock-ok checkpoint duration telemetry for obs.RoundRecord.CkptNS
				CkptBytes: uint64(n),
			}
			probe.OnRound(&rec)
		}
		return nil
	}
}

// Restore loads the snapshot at path into the layers behind t (which
// must come from an identically configured scenario) and arms m to
// resume from it instead of running Model.Init.
func Restore(m *sim.Model, t *ckpt.Target, path string) error {
	ks, err := t.Load(path)
	if err != nil {
		return err
	}
	if m.Ckpt == nil {
		m.Ckpt = &sim.CkptHook{}
	}
	m.Ckpt.Restore = ks
	return nil
}

var (
	_ sim.EvDesc        = stopEvt{}
	_ ckpt.EventDecoder = (*Sim)(nil)
)
