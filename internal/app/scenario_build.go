package app

import (
	"fmt"

	"unison/internal/coll"
	"unison/internal/core"
	"unison/internal/des"
	"unison/internal/netdev"
	"unison/internal/netobs"
	"unison/internal/obs"
	"unison/internal/pdes"
	"unison/internal/routing"
	"unison/internal/sim"
	"unison/internal/tcp"
	"unison/internal/topology"
	"unison/internal/traffic"
	"unison/internal/vtime"
)

// Built is a resolved scenario: the assembled Sim plus the topology
// context (hosts, manual-partition recipe) the CLIs need around it. Each
// Build call constructs a fresh Sim, so benchmark harnesses can Build the
// same Scenario once per kernel.
type Built struct {
	Scenario *Scenario
	Sim      *Sim
	G        *topology.Graph
	Hosts    []sim.NodeID
	// Manual is the node→rank recipe at Ranks granularity (nil for WANs,
	// which have no manual-partition recipe).
	Manual []int32
	// ManualFor re-derives the recipe at another rank count (the
	// distributed runtime sizes it by world size).
	ManualFor func(ranks int) []int32
	// Ranks is the resolved manual-partition rank count.
	Ranks int
	// Flows is the background-traffic flow count (collective flows are
	// tracked by Sim.Coll).
	Flows int
	// Streaming reports whether the workload is generated lazily.
	Streaming bool
	// Observe, when non-nil, is wired into whichever kernel RunKernel
	// constructs. Set it between Build and the run (the CLIs hand it the
	// registry, or the live-telemetry bus in front of it).
	Observe obs.Probe
	// Progress, for the sequential kernel only, emits a progress
	// RoundRecord every Progress executed events so live watchers see
	// movement; other kernels report per round regardless. Zero keeps
	// the kernel's single-summary behavior.
	Progress uint64

	rip *routing.RIP
}

// Build resolves the scenario into a runnable simulation. It validates,
// applies schema defaults, constructs topology, routing, protocol stack
// and workloads, and wires the collective engine when one is configured.
func (sc *Scenario) Build() (*Built, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	b := &Built{Scenario: sc}
	if err := b.buildTopology(&sc.Topology); err != nil {
		return nil, err
	}
	b.Ranks = b.defaultRanks(sc.Kernel.Ranks)
	if b.ManualFor != nil {
		b.Manual = b.ManualFor(b.Ranks)
	}

	cfg := Config{
		Seed:   sc.Seed,
		NetCfg: buildNetConfig(sc),
		TCPCfg: buildTCPConfig(&sc.Protocol.TCP),
		StopAt: sc.Stop.T(),
	}
	if t := sc.Traffic; t != nil {
		tc, err := b.buildTraffic(t, sc)
		if err != nil {
			return nil, err
		}
		if t.Stream {
			b.Streaming = true
			cfg.FlowSrc = traffic.NewStream(tc)
			cfg.FlowCount = traffic.Count(tc)
			cfg.StreamWindow = t.StreamWindow.T()
			b.Flows = cfg.FlowCount
		} else {
			cfg.Flows = traffic.Generate(tc)
			b.Flows = len(cfg.Flows)
		}
	}
	if c := sc.Collective; c != nil {
		cc, err := b.buildCollective(c)
		if err != nil {
			return nil, err
		}
		cfg.Coll = cc
	}

	router, rip, err := buildRouter(sc, b.G)
	if err != nil {
		return nil, err
	}
	b.Sim = New(b.G, router, cfg)
	if rip != nil {
		rip.Attach(b.Sim.Setup, sc.Stop.T())
		b.rip = rip
	}
	return b, nil
}

func (b *Built) buildTopology(t *TopologySpec) error {
	bw := int64(10e9)
	if t.BwGbps > 0 {
		bw = int64(t.BwGbps * 1e9)
	}
	delay := 3 * sim.Microsecond
	if t.Delay > 0 {
		delay = t.Delay.T()
	}
	or := func(v, def int) int {
		if v > 0 {
			return v
		}
		return def
	}
	switch t.Kind {
	case "fattree":
		ft := topology.BuildFatTree(topology.FatTreeK(or(t.K, 4), bw, delay))
		b.G, b.Hosts = ft.Graph, ft.Hosts()
		b.ManualFor = func(r int) []int32 { return pdes.FatTreeManual(ft, r) }
	case "torus":
		tr := topology.BuildTorus2D(or(t.Rows, 6), or(t.Cols, 6), bw, delay)
		b.G, b.Hosts = tr.Graph, tr.Hosts()
		b.ManualFor = func(r int) []int32 { return pdes.TorusManual(tr, r) }
	case "bcube":
		bc := topology.BuildBCube(or(t.N, 4), 1, bw, delay)
		b.G, b.Hosts = bc.Graph, bc.Hosts()
		b.ManualFor = func(r int) []int32 { return pdes.BCubeManual(bc, r) }
	case "spineleaf":
		s := topology.BuildSpineLeaf(or(t.Spines, 2), or(t.Leaves, 4), or(t.N, 4), bw, delay)
		b.G, b.Hosts = s.Graph, s.Hosts()
		b.ManualFor = func(r int) []int32 { return pdes.SpineLeafManual(s, r) }
	case "dumbbell":
		d := topology.BuildDumbbell(or(t.N, 4), bw, bw, delay, 5*delay)
		b.G, b.Hosts = d.Graph, d.Hosts()
		b.ManualFor = func(int) []int32 { return pdes.DumbbellManual(d) }
	case "geant":
		w := topology.Geant()
		b.G, b.Hosts = w.Graph, w.Hosts()
	case "chinanet":
		w := topology.ChinaNet()
		b.G, b.Hosts = w.Graph, w.Hosts()
	default:
		return fmt.Errorf("scenario: unknown topology.kind %q", t.Kind)
	}
	return nil
}

// defaultRanks resolves the manual-partition rank count: the explicit
// kernel.ranks, or the topology recipe's natural granularity.
func (b *Built) defaultRanks(explicit int) int {
	if explicit > 0 {
		return explicit
	}
	t := &b.Scenario.Topology
	switch t.Kind {
	case "fattree":
		if t.K > 0 {
			return t.K
		}
		return 4
	case "bcube":
		if t.N > 0 {
			return t.N
		}
		return 4
	case "dumbbell":
		return 2
	default:
		return 4
	}
}

func buildNetConfig(sc *Scenario) netdev.Config {
	cfg := netdev.DefaultConfig(sc.Seed)
	q := &sc.Protocol.Queue
	max := q.MaxPkts
	if max <= 0 {
		max = 100
	}
	switch q.Kind {
	case "", "droptail":
		cfg.Queue = netdev.DropTailConfig(max)
	case "red":
		cfg.Queue = netdev.REDConfig(max)
	case "dctcp":
		k := q.EcnK
		if k <= 0 {
			k = 20
		}
		cfg.Queue = netdev.DCTCPConfig(max, k)
	case "pfifo":
		cfg.Queue = netdev.PfifoFastConfig(max)
	case "codel":
		cfg.Queue = netdev.CoDelConfig(max)
	}
	if q.ECN != nil {
		cfg.Queue.ECN = *q.ECN
	}
	if sc.Protocol.ChecksumWork != nil {
		cfg.ChecksumWork = *sc.Protocol.ChecksumWork
	}
	return cfg
}

func buildTCPConfig(t *TCPSpec) tcp.Config {
	cfg := tcp.DefaultConfig()
	if t.WAN {
		cfg = tcp.WANConfig()
	}
	if t.Variant == "dctcp" {
		cfg.Variant = tcp.DCTCPConfig().Variant
	}
	if t.MinRTO > 0 {
		cfg.MinRTO = t.MinRTO.T()
	}
	if t.InitCwnd > 0 {
		cfg.InitCwnd = t.InitCwnd
	}
	if t.DelayedAck != nil {
		cfg.DelayedAck = *t.DelayedAck
	}
	if t.AckDelay > 0 {
		cfg.AckDelay = t.AckDelay.T()
	}
	if t.RcvBuf > 0 {
		cfg.RcvBuf = t.RcvBuf
	}
	return cfg
}

func (b *Built) buildTraffic(t *TrafficSpec, sc *Scenario) (traffic.Config, error) {
	tc := traffic.Config{
		Seed:         sc.Seed,
		Hosts:        b.Hosts,
		Load:         t.Load,
		BisectionBps: b.G.BisectionBandwidth(),
		Start:        t.Start.T(),
		End:          t.End.T(),
		IncastRatio:  t.Incast,
	}
	switch t.Sizes {
	case "", "grpc":
		tc.Sizes = traffic.GRPCCDF()
	case "websearch":
		tc.Sizes = traffic.WebSearchCDF()
	}
	if t.Pattern == "permutation" {
		tc.Pattern = traffic.Permutation
	}
	if t.Victim != nil {
		if *t.Victim >= len(b.Hosts) {
			return tc, fmt.Errorf("scenario: traffic.victim %d out of range (topology has %d hosts)", *t.Victim, len(b.Hosts))
		}
		tc.Victim = b.Hosts[*t.Victim]
		tc.HasVictim = true
	}
	if tc.End == 0 {
		tc.End = sc.Stop.T() * 3 / 4
	}
	if tc.End <= tc.Start {
		return tc, fmt.Errorf("scenario: traffic window is empty (start %v >= end %v)", tc.Start, tc.End)
	}
	return tc, nil
}

func (b *Built) buildCollective(c *CollectiveSpec) (*coll.Config, error) {
	p := c.Participants
	if p == 0 {
		p = len(b.Hosts)
	}
	if p > len(b.Hosts) {
		return nil, fmt.Errorf("scenario: collective.participants %d exceeds the topology's %d hosts", p, len(b.Hosts))
	}
	cc := &coll.Config{
		Pattern:      c.Pattern,
		Nodes:        b.Hosts[:p],
		MessageBytes: c.MessageBytes,
		ChunkBytes:   c.ChunkBytes,
		Start:        c.Start.T(),
		StepDelay:    c.StepDelay.T(),
		Iters:        c.Iters,
	}
	if err := cc.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return cc, nil
}

func buildRouter(sc *Scenario, g *topology.Graph) (routing.Router, *routing.RIP, error) {
	metric := routing.Hops
	if sc.Routing.Metric == "delay" {
		metric = routing.Delay
	}
	switch sc.Routing.Kind {
	case "", "ecmp":
		return routing.NewECMP(g, metric, sc.Seed), nil, nil
	case "nix":
		return routing.NewNix(g, metric), nil, nil
	case "rip":
		period := sc.Routing.Period.T()
		if period <= 0 {
			period = 20 * sim.Microsecond
		}
		r := routing.NewRIP(g, period)
		return r, r, nil
	default:
		return nil, nil, fmt.Errorf("scenario: unknown routing.kind %q", sc.Routing.Kind)
	}
}

// RunKernel executes the finalized model under the scenario's kernel
// selection (kernel.kind / kernel.threads, plus the manual partition for
// the PDES baselines). The caller owns Model() so it can wire
// checkpoints or observability between Build and the run.
func (b *Built) RunKernel(m *sim.Model) (*sim.RunStats, error) {
	kind := b.Scenario.Kernel.Kind
	if kind == "" {
		kind = "unison"
	}
	threads := b.Scenario.Kernel.Threads
	if threads <= 0 {
		threads = 4
	}
	needManual := func() (*core.Partition, error) {
		if b.Manual == nil {
			return nil, fmt.Errorf("the %s kernel needs a manual partition; topology %q has no recipe (use unison)", kind, b.Scenario.Topology.Kind)
		}
		return core.Manual(b.Manual, b.G.LinkInfos()), nil
	}
	switch kind {
	case "sequential", "seq":
		return (&des.Kernel{Observe: b.Observe, ProgressEvery: b.Progress}).Run(m)
	case "unison":
		return core.New(core.Config{Threads: threads, Observe: b.Observe}).Run(m)
	case "hybrid":
		if b.Manual == nil {
			return nil, fmt.Errorf("the hybrid kernel needs a host partition; topology %q has none", b.Scenario.Topology.Kind)
		}
		return core.NewHybrid(core.HybridConfig{HostOf: b.Manual, ThreadsPerHost: threads, Observe: b.Observe}).Run(m)
	case "barrier":
		part, err := needManual()
		if err != nil {
			return nil, err
		}
		return (&pdes.BarrierKernel{Part: part, Observe: b.Observe}).Run(m)
	case "nullmsg":
		part, err := needManual()
		if err != nil {
			return nil, err
		}
		return (&pdes.NullMessageKernel{Part: part, Observe: b.Observe}).Run(m)
	case "vseq":
		return vtime.Run(m, vtime.Config{Algo: vtime.Sequential, Observe: b.Observe})
	case "vbarrier":
		return vtime.Run(m, vtime.Config{Algo: vtime.Barrier, LPOf: b.Manual, Observe: b.Observe})
	case "vnullmsg":
		return vtime.Run(m, vtime.Config{Algo: vtime.NullMessage, LPOf: b.Manual, Observe: b.Observe})
	case "vunison":
		return vtime.Run(m, vtime.Config{Algo: vtime.Unison, Cores: threads, Observe: b.Observe})
	default:
		return nil, fmt.Errorf("unknown kernel %q", kind)
	}
}

// Bundle assembles the run-artifact bundle for a finished run: metadata,
// kernel stats, the flow monitor, sampler rows, optional packet trace,
// and the collective report when the scenario carries one. The sampler
// is flushed here; pass nil when observability was not enabled.
func (b *Built) Bundle(tool string, st *sim.RunStats, sampler *netobs.Sampler) *netobs.Bundle {
	threads := b.Scenario.Kernel.Threads
	if threads <= 0 {
		threads = 4
	}
	bw := b.Scenario.Topology.BwGbps
	if bw <= 0 {
		bw = 10
	}
	out := &netobs.Bundle{
		Meta: netobs.Meta{
			Tool: tool, Kernel: st.Kernel, Topology: b.Scenario.Topology.Kind,
			Seed: b.Scenario.Seed, Workers: threads, StopNS: int64(b.Scenario.Stop),
			Flows: b.Sim.Mon.Flows(),
		},
		Stats:        st,
		Mon:          b.Sim.Mon,
		RefBandwidth: int64(bw * 1e9),
	}
	if r := b.Sim.CollReport(b.Sim.Mon); r != nil {
		out.Coll = r
	}
	if sampler != nil {
		sampler.Flush()
		out.Rows = sampler.Rows()
		out.Interval = sampler.Interval()
	}
	if b.Sim.Net.Tracer != nil {
		out.Trace = b.Sim.Net.Tracer.Merged()
	}
	return out
}
