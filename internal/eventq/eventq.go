// Package eventq implements the future event list (FEL): a priority queue
// of discrete events ordered by the deterministic total order
// (Time, Src, Seq) defined in internal/sim.
//
// The implementation is a 4-ary implicit heap over a value slice. A 4-ary
// heap halves tree height versus a binary heap and keeps siblings on one
// cache line, which matters because FEL operations dominate kernel
// overhead in fine-grained-partition runs (many small per-LP queues).
package eventq

import "unison/internal/sim"

// FEL is the future-event-list contract shared by the binary-heap Queue
// and the Calendar queue; kernels depend only on this interface so the
// data structure is an ablation knob (BenchmarkFELHeapVsCalendar).
type FEL interface {
	Len() int
	Empty() bool
	NextTime() sim.Time
	Push(ev sim.Event)
	Pop() sim.Event
	PopBefore(bound sim.Time) (sim.Event, bool)
}

// Queue is a future event list. The zero value is an empty, usable queue.
type Queue struct {
	h []sim.Event
}

// New returns an empty queue with capacity hint n.
func New(n int) *Queue {
	return &Queue{h: make([]sim.Event, 0, n)}
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// Empty reports whether the queue has no pending events.
func (q *Queue) Empty() bool { return len(q.h) == 0 }

// Clear removes all events without releasing storage.
func (q *Queue) Clear() { q.h = q.h[:0] }

// NextTime returns the timestamp of the earliest event, or sim.MaxTime if
// the queue is empty. Kernels use this for LBTS computation.
func (q *Queue) NextTime() sim.Time {
	if len(q.h) == 0 {
		return sim.MaxTime
	}
	return q.h[0].Time
}

// Peek returns a pointer to the earliest event without removing it.
// The pointer is invalidated by any mutation of the queue.
func (q *Queue) Peek() *sim.Event {
	return &q.h[0]
}

// Push inserts ev.
func (q *Queue) Push(ev sim.Event) {
	q.h = append(q.h, ev)
	q.up(len(q.h) - 1)
}

// Pop removes and returns the earliest event. It panics on an empty queue.
func (q *Queue) Pop() sim.Event {
	top := q.h[0]
	n := len(q.h) - 1
	q.h[0] = q.h[n]
	q.h[n] = sim.Event{} // release Fn closure for GC
	q.h = q.h[:n]
	if n > 0 {
		q.down(0)
	}
	return top
}

// PopBefore removes and returns the earliest event if its timestamp is
// strictly less than bound; ok reports whether an event was returned.
// This is the hot-path operation of every conservative PDES kernel:
// "execute all events within the LBTS window".
func (q *Queue) PopBefore(bound sim.Time) (ev sim.Event, ok bool) {
	if len(q.h) == 0 || q.h[0].Time >= bound {
		return sim.Event{}, false
	}
	return q.Pop(), true
}

func (q *Queue) less(i, j int) bool { return q.h[i].Before(&q.h[j]) }

func (q *Queue) up(i int) {
	for i > 0 {
		p := (i - 1) / 4
		if !q.less(i, p) {
			break
		}
		q.h[i], q.h[p] = q.h[p], q.h[i]
		i = p
	}
}

func (q *Queue) down(i int) {
	n := len(q.h)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if q.less(c, min) {
				min = c
			}
		}
		if !q.less(min, i) {
			return
		}
		q.h[i], q.h[min] = q.h[min], q.h[i]
		i = min
	}
}

// Drain appends all events to dst in arbitrary order and clears the queue.
func (q *Queue) Drain(dst []sim.Event) []sim.Event {
	dst = append(dst, q.h...)
	for i := range q.h {
		q.h[i] = sim.Event{}
	}
	q.h = q.h[:0]
	return dst
}
