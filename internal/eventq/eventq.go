// Package eventq implements the future event list (FEL): a priority queue
// of discrete events ordered by the deterministic total order
// (Time, Src, Seq) defined in internal/sim.
//
// The implementation is a 4-ary implicit heap over a value slice. A 4-ary
// heap halves tree height versus a binary heap and keeps siblings on one
// cache line, which matters because FEL operations dominate kernel
// overhead in fine-grained-partition runs (many small per-LP queues).
//
// The heap stores only the 24-byte pointer-free comparison key
// (Time, Src, Seq) plus an arena index; the event's payload (Node, Fn)
// lives in a side arena addressed by that index. Sift operations
// therefore move small pointer-free values — no GC write barriers, no
// closure shuffling — which profiles show cuts the per-operation cost of
// the kernels' hottest data structure roughly in half.
package eventq

import "unison/internal/sim"

// FEL is the future-event-list contract shared by the binary-heap Queue
// and the Calendar queue; kernels depend only on this interface so the
// data structure is an ablation knob (BenchmarkFELHeapVsCalendar).
type FEL interface {
	Len() int
	Empty() bool
	NextTime() sim.Time
	Push(ev sim.Event)
	// PushBatch inserts every event of evs. Implementations may bulk-load
	// (Floyd heapify) when the batch is large relative to the pending set;
	// because (Time, Src, Seq) is a total order with no duplicate keys, the
	// dequeue sequence is identical to a Push loop regardless of strategy.
	PushBatch(evs []sim.Event)
	Pop() sim.Event
	PopBefore(bound sim.Time) (sim.Event, bool)
	// Snapshot appends every pending event to dst in arbitrary order
	// without disturbing the queue — the read side of a checkpoint.
	Snapshot(dst []sim.Event) []sim.Event
}

// entry is one heap node: the deterministic comparison key and the arena
// slot of the event's payload. Pointer-free by construction.
type entry struct {
	time sim.Time
	seq  uint64
	src  sim.NodeID
	idx  int32
}

// before is (Time, Src, Seq) lexicographic order, mirroring sim.Event.Before.
func (e *entry) before(o *entry) bool {
	if e.time != o.time {
		return e.time < o.time
	}
	if e.src != o.src {
		return e.src < o.src
	}
	return e.seq < o.seq
}

// slot holds the payload of one pending event.
type slot struct {
	fn   sim.Proc
	desc sim.EvDesc
	node sim.NodeID
}

// Queue is a future event list. The zero value is an empty, usable queue.
type Queue struct {
	h     []entry
	arena []slot
	free  []int32   // recycled arena slots
	top   sim.Event // Peek scratch
}

// New returns an empty queue with capacity hint n.
func New(n int) *Queue {
	return &Queue{h: make([]entry, 0, n), arena: make([]slot, 0, n)}
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// Empty reports whether the queue has no pending events.
func (q *Queue) Empty() bool { return len(q.h) == 0 }

// Clear removes all events without releasing storage.
func (q *Queue) Clear() {
	q.h = q.h[:0]
	for i := range q.arena {
		q.arena[i].fn = nil
	}
	q.arena = q.arena[:0]
	q.free = q.free[:0]
}

// NextTime returns the timestamp of the earliest event, or sim.MaxTime if
// the queue is empty. Kernels use this for LBTS computation.
func (q *Queue) NextTime() sim.Time {
	if len(q.h) == 0 {
		return sim.MaxTime
	}
	return q.h[0].time
}

// Peek returns the earliest event without removing it, or nil if the
// queue is empty. The pointed-to value is overwritten by the next Peek
// and invalidated by any mutation of the queue.
func (q *Queue) Peek() *sim.Event {
	if len(q.h) == 0 {
		return nil
	}
	e := &q.h[0]
	s := &q.arena[e.idx]
	q.top = sim.Event{Time: e.time, Src: e.src, Seq: e.seq, Node: s.node, Fn: s.fn, Desc: s.desc}
	return &q.top
}

// alloc parks (Node, Fn) in the arena and returns its slot.
func (q *Queue) alloc(ev *sim.Event) int32 {
	if n := len(q.free); n > 0 {
		i := q.free[n-1]
		q.free = q.free[:n-1]
		q.arena[i] = slot{fn: ev.Fn, desc: ev.Desc, node: ev.Node}
		return i
	}
	q.arena = append(q.arena, slot{fn: ev.Fn, desc: ev.Desc, node: ev.Node})
	return int32(len(q.arena) - 1)
}

// Push inserts ev.
func (q *Queue) Push(ev sim.Event) {
	idx := q.alloc(&ev)
	q.h = append(q.h, entry{time: ev.Time, seq: ev.Seq, src: ev.Src, idx: idx})
	q.up(len(q.h) - 1)
}

// PushBatch inserts every event of evs. When the batch is at least a
// quarter of the resulting heap, the whole key slice is rebuilt with
// Floyd's bottom-up heapify — O(n+m) instead of O(m log(n+m)) sift-ups —
// which is the common case for the phase-3 mailbox drain of the parallel
// kernels (small per-LP heaps receiving a round's worth of cross-LP
// events at once). Smaller batches fall back to individual inserts.
func (q *Queue) PushBatch(evs []sim.Event) {
	if len(evs) == 0 {
		return
	}
	if 4*len(evs) >= len(q.h)+len(evs) {
		for i := range evs {
			ev := &evs[i]
			idx := q.alloc(ev)
			q.h = append(q.h, entry{time: ev.Time, seq: ev.Seq, src: ev.Src, idx: idx})
		}
		// Floyd: sift down every internal node, deepest first. The parent
		// of the last element in a 4-ary heap is (n-2)/4.
		for i := (len(q.h) - 2) / 4; i >= 0; i-- {
			q.down(i)
		}
		return
	}
	for _, ev := range evs {
		q.Push(ev)
	}
}

// Pop removes and returns the earliest event. It panics on an empty queue.
func (q *Queue) Pop() sim.Event {
	top := q.h[0]
	n := len(q.h) - 1
	q.h[0] = q.h[n]
	q.h = q.h[:n]
	if n > 0 {
		q.down(0)
	}
	s := &q.arena[top.idx]
	ev := sim.Event{Time: top.time, Src: top.src, Seq: top.seq, Node: s.node, Fn: s.fn, Desc: s.desc}
	s.fn = nil // release the closure for GC
	s.desc = nil
	q.free = append(q.free, top.idx)
	return ev
}

// PopBefore removes and returns the earliest event if its timestamp is
// strictly less than bound; ok reports whether an event was returned.
// This is the hot-path operation of every conservative PDES kernel:
// "execute all events within the LBTS window".
func (q *Queue) PopBefore(bound sim.Time) (ev sim.Event, ok bool) {
	if len(q.h) == 0 || q.h[0].time >= bound {
		return sim.Event{}, false
	}
	return q.Pop(), true
}

// up sifts the element at i toward the root, moving displaced parents
// down into the hole instead of swapping (one copy per level, not three).
func (q *Queue) up(i int) {
	e := q.h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !e.before(&q.h[p]) {
			break
		}
		q.h[i] = q.h[p]
		i = p
	}
	q.h[i] = e
}

// down sifts the element at i toward the leaves with the same hole
// technique as up.
func (q *Queue) down(i int) {
	n := len(q.h)
	e := q.h[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if q.h[c].before(&q.h[min]) {
				min = c
			}
		}
		if !q.h[min].before(&e) {
			break
		}
		q.h[i] = q.h[min]
		i = min
	}
	q.h[i] = e
}

// Drain appends all events to dst in arbitrary order and clears the queue.
func (q *Queue) Drain(dst []sim.Event) []sim.Event {
	dst = q.Snapshot(dst)
	q.Clear()
	return dst
}

// Snapshot appends all pending events to dst in arbitrary order without
// modifying the queue. Checkpointing uses this to read a quiescent FEL;
// callers sort the result by the deterministic total order themselves.
func (q *Queue) Snapshot(dst []sim.Event) []sim.Event {
	for i := range q.h {
		e := &q.h[i]
		s := &q.arena[e.idx]
		dst = append(dst, sim.Event{Time: e.time, Src: e.src, Seq: e.seq, Node: s.node, Fn: s.fn, Desc: s.desc})
	}
	return dst
}
