package eventq

import (
	"math/rand"
	"testing"
	"testing/quick"

	"unison/internal/sim"
)

func TestCalendarBasicOrder(t *testing.T) {
	c := NewCalendar(10)
	c.Push(ev(30, 1, 0))
	c.Push(ev(10, 2, 5))
	c.Push(ev(20, 0, 1))
	c.Push(ev(10, 1, 3))
	want := []sim.Time{10, 10, 20, 30}
	for i, w := range want {
		got := c.Pop()
		if got.Time != w {
			t.Fatalf("pop %d at %v, want %v", i, got.Time, w)
		}
	}
	if !c.Empty() {
		t.Fatal("not empty after drain")
	}
}

func TestCalendarEmpty(t *testing.T) {
	c := NewCalendar(10)
	if c.NextTime() != sim.MaxTime {
		t.Fatal("NextTime on empty")
	}
	if _, ok := c.PopBefore(sim.MaxTime); ok {
		t.Fatal("PopBefore on empty returned an event")
	}
}

func TestCalendarPopBeforeStrict(t *testing.T) {
	c := NewCalendar(10)
	c.Push(ev(50, 0, 0))
	if _, ok := c.PopBefore(50); ok {
		t.Fatal("PopBefore popped an event at exactly the bound")
	}
	if _, ok := c.PopBefore(51); !ok {
		t.Fatal("PopBefore missed an in-window event")
	}
}

// TestCalendarMatchesHeapQuick: the calendar must dequeue in exactly the
// heap's (Time, Src, Seq) order under any insertion pattern, including
// interleaved pushes/pops and resize churn.
func TestCalendarMatchesHeapQuick(t *testing.T) {
	f := func(seed int64, opsRaw []uint16) bool {
		if len(opsRaw) > 600 {
			opsRaw = opsRaw[:600]
		}
		r := rand.New(rand.NewSource(seed))
		h := New(0)
		c := NewCalendar(sim.Time(r.Intn(50) + 1))
		var seq uint64
		base := sim.Time(0)
		for _, op := range opsRaw {
			if op%3 != 0 || h.Empty() {
				// Push at or after the last dequeue (kernel discipline).
				e := ev(base+sim.Time(op%500), sim.NodeID(op%7), seq)
				seq++
				h.Push(e)
				c.Push(e)
			} else {
				a := h.Pop()
				b := c.Pop()
				if a.Time != b.Time || a.Src != b.Src || a.Seq != b.Seq {
					return false
				}
				base = a.Time
			}
			if h.NextTime() != c.NextTime() {
				return false
			}
		}
		for !h.Empty() {
			a := h.Pop()
			b := c.Pop()
			if a.Time != b.Time || a.Src != b.Src || a.Seq != b.Seq {
				return false
			}
		}
		return c.Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCalendarResizeChurn(t *testing.T) {
	c := NewCalendar(1)
	// Push far more than the initial bucket count to force growth, then
	// drain to force shrinks.
	for i := 0; i < 5000; i++ {
		c.Push(ev(sim.Time(i*7%1000), 0, uint64(i)))
	}
	if c.Len() != 5000 {
		t.Fatalf("len=%d", c.Len())
	}
	prev := sim.Time(-1)
	for !c.Empty() {
		e := c.Pop()
		if e.Time < prev {
			t.Fatalf("order violated: %v after %v", e.Time, prev)
		}
		prev = e.Time
	}
}

func TestCalendarSparseJump(t *testing.T) {
	// Events separated by many empty years: the cursor must jump.
	c := NewCalendar(10)
	c.Push(ev(5, 0, 0))
	c.Push(ev(1_000_000, 0, 1))
	c.Push(ev(2_000_000_000, 0, 2))
	for i, want := range []sim.Time{5, 1_000_000, 2_000_000_000} {
		if got := c.Pop(); got.Time != want {
			t.Fatalf("pop %d = %v", i, got.Time)
		}
	}
}

func BenchmarkFELHeapVsCalendar(b *testing.B) {
	mkLoad := func(push func(sim.Event), pop func() sim.Event) func(n int) {
		return func(n int) {
			r := rand.New(rand.NewSource(9))
			var seq uint64
			base := sim.Time(0)
			for i := 0; i < n; i++ {
				if i%3 != 2 {
					push(ev(base+sim.Time(r.Intn(2000)), 0, seq))
					seq++
				} else {
					base = pop().Time
				}
			}
		}
	}
	b.Run("heap", func(b *testing.B) {
		q := New(1024)
		run := mkLoad(q.Push, q.Pop)
		b.ResetTimer()
		run(b.N)
	})
	b.Run("calendar", func(b *testing.B) {
		c := NewCalendar(100)
		run := mkLoad(c.Push, c.Pop)
		b.ResetTimer()
		run(b.N)
	})
}
