package eventq

import (
	"math/rand"
	"testing"
	"testing/quick"

	"unison/internal/sim"
)

// TestPeekEmpty pins the empty-queue contract: Peek returns nil instead
// of indexing an empty backing slice (regression for the unconditional
// q.h[0] access).
func TestPeekEmpty(t *testing.T) {
	q := New(0)
	if got := q.Peek(); got != nil {
		t.Fatalf("Peek on empty queue = %v, want nil", got)
	}
	q.Push(ev(1, 0, 0))
	q.Pop()
	if got := q.Peek(); got != nil {
		t.Fatalf("Peek after draining = %v, want nil", got)
	}
}

// randomEvents builds n events with many Time ties so that the pop order
// exercises the (Src, Seq) tie-breaking levels of the total order. Seq is
// globally unique, matching the kernel invariant that (Time, Src, Seq)
// admits no duplicate keys.
func randomEvents(r *rand.Rand, n int) []sim.Event {
	evs := make([]sim.Event, n)
	for i := range evs {
		evs[i] = ev(sim.Time(r.Intn(7)), sim.NodeID(r.Intn(5)), uint64(i))
	}
	return evs
}

// popAll drains q and returns the dequeue sequence.
func popAll(q *Queue) []sim.Event {
	out := make([]sim.Event, 0, q.Len())
	for !q.Empty() {
		out = append(out, q.Pop())
	}
	return out
}

// TestPushBatchEquivalence is the bulk-load correctness property: for a
// random pre-population and a random batch, PushBatch produces a heap
// whose pop order is identical to a naive Push loop over the same events.
// Batch and heap sizes are drawn to land on both sides of the Floyd
// heapify threshold.
func TestPushBatchEquivalence(t *testing.T) {
	f := func(seed int64, preN, batchN uint8) bool {
		r := rand.New(rand.NewSource(seed))
		pre := randomEvents(r, int(preN))
		batch := make([]sim.Event, int(batchN))
		for i := range batch {
			batch[i] = ev(sim.Time(r.Intn(7)), sim.NodeID(r.Intn(5)), uint64(1000+i))
		}

		bulk, naive := New(0), New(0)
		for _, e := range pre {
			bulk.Push(e)
			naive.Push(e)
		}
		bulk.PushBatch(batch)
		for _, e := range batch {
			naive.Push(e)
		}

		if bulk.Len() != naive.Len() {
			return false
		}
		want := popAll(naive)
		got := popAll(bulk)
		for i := range want {
			if got[i].Time != want[i].Time || got[i].Src != want[i].Src || got[i].Seq != want[i].Seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPushBatchThresholdEdges drives the exact boundary cases of the
// heapify threshold: empty batch, batch into empty heap (pure Floyd),
// single event, and a tiny batch into a large heap (sift-up path).
func TestPushBatchThresholdEdges(t *testing.T) {
	q := New(0)
	q.PushBatch(nil)
	if !q.Empty() {
		t.Fatalf("PushBatch(nil) created events")
	}

	r := rand.New(rand.NewSource(7))
	all := randomEvents(r, 257)
	q.PushBatch(all[:256]) // empty heap: Floyd path
	q.PushBatch(all[256:]) // 1 into 256: sift-up path
	want := New(0)
	for _, e := range all {
		want.Push(e)
	}
	got, exp := popAll(q), popAll(want)
	for i := range exp {
		if got[i].Time != exp[i].Time || got[i].Src != exp[i].Src || got[i].Seq != exp[i].Seq {
			t.Fatalf("pop %d: got (%v,%d,%d), want (%v,%d,%d)",
				i, got[i].Time, got[i].Src, got[i].Seq, exp[i].Time, exp[i].Src, exp[i].Seq)
		}
	}
}

// TestCalendarPushBatch pins that the Calendar's PushBatch dequeues
// identically to the heap Queue's, keeping the FEL implementations
// interchangeable.
func TestCalendarPushBatch(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	batch := randomEvents(r, 200)
	c := NewCalendar(3)
	q := New(0)
	c.PushBatch(batch)
	q.PushBatch(batch)
	for !q.Empty() {
		want := q.Pop()
		got := c.Pop()
		if got.Time != want.Time || got.Src != want.Src || got.Seq != want.Seq {
			t.Fatalf("calendar pop (%v,%d,%d), heap pop (%v,%d,%d)",
				got.Time, got.Src, got.Seq, want.Time, want.Src, want.Seq)
		}
	}
	if !c.Empty() {
		t.Fatalf("calendar retains %d events after heap drained", c.Len())
	}
}

func BenchmarkPushBatchVsLoop(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	batch := make([]sim.Event, 64)
	for i := range batch {
		batch[i] = ev(sim.Time(r.Intn(1<<20)), 0, uint64(i))
	}
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := New(64)
			q.PushBatch(batch)
		}
	})
	b.Run("loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := New(64)
			for _, e := range batch {
				q.Push(e)
			}
		}
	})
}
