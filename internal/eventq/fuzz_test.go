package eventq

import (
	"sort"
	"testing"

	"unison/internal/sim"
)

// FuzzPushBatch drives the heap Queue through arbitrary interleavings of
// PushBatch, Push, Pop and PopBefore decoded from the fuzz input, and
// checks two properties after every operation:
//
//  1. the 4-ary heap invariant holds over the backing slice, and
//  2. every dequeue matches a reference oracle (a sorted slice under the
//     deterministic (Time, Src, Seq) total order).
//
// Batch sizes are drawn up to 48 so inputs land on both sides of the
// Floyd-heapify threshold inside PushBatch. Seq is globally unique per
// run, matching the kernel invariant that the total order has no
// duplicate keys. CI runs this with -fuzz=FuzzPushBatch -fuzztime=10s as
// a smoke pass; the committed seeds alone cover the empty queue, a pure
// bulk load, and a push/pop churn.
func FuzzPushBatch(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 40, 1, 2, 3}) // one large batch: Floyd path
	f.Add([]byte{3, 1, 9, 0, 0, 3, 1, 4, 0, 0, 1, 5})
	f.Add([]byte{2, 8, 6, 6, 6, 6, 0, 0, 0, 2, 8, 6, 1, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		q := New(0)
		var ref []sim.Event // oracle: pending events, sorted on demand
		var seq uint64
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}

		sortRef := func() {
			sort.Slice(ref, func(i, j int) bool {
				a, b := ref[i], ref[j]
				if a.Time != b.Time {
					return a.Time < b.Time
				}
				if a.Src != b.Src {
					return a.Src < b.Src
				}
				return a.Seq < b.Seq
			})
		}
		checkPopped := func(got sim.Event) {
			t.Helper()
			sortRef()
			want := ref[0]
			ref = ref[1:]
			if got.Time != want.Time || got.Src != want.Src || got.Seq != want.Seq {
				t.Fatalf("popped (%v,%d,%d), oracle says (%v,%d,%d)",
					got.Time, got.Src, got.Seq, want.Time, want.Src, want.Seq)
			}
		}

		for len(data) > 0 {
			switch next() % 4 {
			case 0: // Pop
				if q.Empty() {
					if len(ref) != 0 {
						t.Fatalf("queue empty but oracle holds %d events", len(ref))
					}
					continue
				}
				checkPopped(q.Pop())
			case 1: // PopBefore
				bound := sim.Time(next() % 8)
				got, ok := q.PopBefore(bound)
				sortRef()
				wantOK := len(ref) > 0 && ref[0].Time < bound
				if ok != wantOK {
					t.Fatalf("PopBefore(%v) ok=%v, oracle says %v (pending %d)", bound, ok, wantOK, len(ref))
				}
				if ok {
					checkPopped(got)
				}
			case 2: // PushBatch
				n := int(next() % 49)
				batch := make([]sim.Event, n)
				for i := range batch {
					batch[i] = ev(sim.Time(next()%7), sim.NodeID(next()%5), seq)
					seq++
				}
				q.PushBatch(batch)
				ref = append(ref, batch...)
			case 3: // single Push
				e := ev(sim.Time(next()%7), sim.NodeID(next()%5), seq)
				seq++
				q.Push(e)
				ref = append(ref, e)
			}
			if q.Len() != len(ref) {
				t.Fatalf("queue holds %d events, oracle %d", q.Len(), len(ref))
			}
			checkHeapInvariant(t, q)
		}

		// Drain: the full dequeue sequence must equal the sorted oracle.
		for !q.Empty() {
			checkPopped(q.Pop())
			checkHeapInvariant(t, q)
		}
		if len(ref) != 0 {
			t.Fatalf("queue drained but oracle still holds %d events", len(ref))
		}
	})
}

// checkHeapInvariant asserts the 4-ary min-heap ordering over the queue's
// backing slice: no element sorts before its parent.
func checkHeapInvariant(t *testing.T, q *Queue) {
	t.Helper()
	for i := 1; i < len(q.h); i++ {
		p := (i - 1) / 4
		if q.h[i].before(&q.h[p]) {
			t.Fatalf("heap invariant broken: h[%d]=(%v,%d,%d) sorts before parent h[%d]=(%v,%d,%d)",
				i, q.h[i].time, q.h[i].src, q.h[i].seq, p, q.h[p].time, q.h[p].src, q.h[p].seq)
		}
	}
}
