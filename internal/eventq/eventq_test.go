package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"unison/internal/sim"
)

func ev(t sim.Time, src sim.NodeID, seq uint64) sim.Event {
	return sim.Event{Time: t, Src: src, Seq: seq}
}

func TestEmptyQueue(t *testing.T) {
	q := New(4)
	if !q.Empty() || q.Len() != 0 {
		t.Fatalf("new queue not empty")
	}
	if q.NextTime() != sim.MaxTime {
		t.Fatalf("NextTime of empty queue = %v, want MaxTime", q.NextTime())
	}
	if _, ok := q.PopBefore(sim.MaxTime); ok {
		t.Fatalf("PopBefore on empty queue returned an event")
	}
}

func TestPushPopOrdering(t *testing.T) {
	q := New(0)
	q.Push(ev(30, 1, 0))
	q.Push(ev(10, 2, 5))
	q.Push(ev(20, 0, 1))
	q.Push(ev(10, 1, 3))
	q.Push(ev(10, 2, 4))
	want := []sim.Event{ev(10, 1, 3), ev(10, 2, 4), ev(10, 2, 5), ev(20, 0, 1), ev(30, 1, 0)}
	for i, w := range want {
		got := q.Pop()
		if got.Time != w.Time || got.Src != w.Src || got.Seq != w.Seq {
			t.Fatalf("pop %d = (%v,%d,%d), want (%v,%d,%d)", i, got.Time, got.Src, got.Seq, w.Time, w.Src, w.Seq)
		}
	}
	if !q.Empty() {
		t.Fatalf("queue not empty after draining")
	}
}

func TestTieBreakOrder(t *testing.T) {
	// Same timestamp: order by (Src, Seq).
	q := New(0)
	q.Push(ev(5, 3, 0))
	q.Push(ev(5, 1, 9))
	q.Push(ev(5, 1, 2))
	q.Push(ev(5, 2, 0))
	srcs := []sim.NodeID{1, 1, 2, 3}
	seqs := []uint64{2, 9, 0, 0}
	for i := range srcs {
		got := q.Pop()
		if got.Src != srcs[i] || got.Seq != seqs[i] {
			t.Fatalf("pop %d = (%d,%d), want (%d,%d)", i, got.Src, got.Seq, srcs[i], seqs[i])
		}
	}
}

func TestPopBefore(t *testing.T) {
	q := New(0)
	for i := 0; i < 10; i++ {
		q.Push(ev(sim.Time(i*10), 0, uint64(i)))
	}
	var popped []sim.Time
	for {
		e, ok := q.PopBefore(45)
		if !ok {
			break
		}
		popped = append(popped, e.Time)
	}
	if len(popped) != 5 {
		t.Fatalf("PopBefore(45) returned %d events, want 5", len(popped))
	}
	// Strictness: event exactly at the bound must stay.
	if q.NextTime() != 50 {
		t.Fatalf("NextTime = %v, want 50", q.NextTime())
	}
	if _, ok := q.PopBefore(50); ok {
		t.Fatalf("PopBefore(50) popped the event at exactly 50")
	}
}

func TestPeek(t *testing.T) {
	q := New(0)
	q.Push(ev(7, 1, 1))
	q.Push(ev(3, 2, 2))
	if q.Peek().Time != 3 {
		t.Fatalf("Peek = %v, want 3", q.Peek().Time)
	}
	if q.Len() != 2 {
		t.Fatalf("Peek must not remove")
	}
}

func TestClearAndDrain(t *testing.T) {
	q := New(0)
	for i := 0; i < 5; i++ {
		q.Push(ev(sim.Time(i), 0, uint64(i)))
	}
	got := q.Drain(nil)
	if len(got) != 5 || !q.Empty() {
		t.Fatalf("Drain returned %d events, empty=%v", len(got), q.Empty())
	}
	q.Push(ev(1, 0, 0))
	q.Clear()
	if !q.Empty() {
		t.Fatalf("Clear left events")
	}
}

// TestHeapPropertyQuick is a property test: for random insertion orders,
// popping yields the (Time, Src, Seq) sorted order.
func TestHeapPropertyQuick(t *testing.T) {
	f := func(times []uint16, salt uint32) bool {
		if len(times) > 512 {
			times = times[:512]
		}
		r := rand.New(rand.NewSource(int64(salt)))
		q := New(0)
		var evs []sim.Event
		for i, tm := range times {
			e := ev(sim.Time(tm%97), sim.NodeID(r.Intn(7)), uint64(i))
			evs = append(evs, e)
			q.Push(e)
		}
		sort.Slice(evs, func(i, j int) bool { return evs[i].Before(&evs[j]) })
		for i := range evs {
			got := q.Pop()
			if got.Time != evs[i].Time || got.Src != evs[i].Src || got.Seq != evs[i].Seq {
				return false
			}
		}
		return q.Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestInterleavedPushPop mixes pushes and pops and checks monotone
// non-decreasing pop order when no earlier events are inserted.
func TestInterleavedPushPop(t *testing.T) {
	q := New(0)
	r := rand.New(rand.NewSource(1))
	last := sim.Time(-1)
	next := sim.Time(0)
	var seq uint64
	for i := 0; i < 10000; i++ {
		if q.Empty() || r.Intn(2) == 0 {
			// Push an event at or after the last popped time.
			at := last
			if at < 0 {
				at = 0
			}
			q.Push(ev(at+sim.Time(r.Intn(50)), 0, seq))
			seq++
		} else {
			e := q.Pop()
			if e.Time < last {
				t.Fatalf("pop went backwards: %v after %v", e.Time, last)
			}
			last = e.Time
		}
		_ = next
	}
}

func BenchmarkPushPop(b *testing.B) {
	q := New(1024)
	r := rand.New(rand.NewSource(3))
	times := make([]sim.Time, 1024)
	for i := range times {
		times[i] = sim.Time(r.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(ev(times[i%1024], 0, uint64(i)))
		if q.Len() > 512 {
			q.Pop()
		}
	}
}
