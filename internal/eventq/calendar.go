package eventq

import "unison/internal/sim"

// Calendar is a calendar queue (Brown 1988) — the future event list
// ns-3 itself defaults to. It hashes events into day-buckets by
// timestamp and walks the calendar year by year; amortized O(1) for the
// uniform event-time distributions network simulations produce, at the
// cost of resize sweeps when occupancy drifts.
//
// Within a bucket, events are kept sorted by the deterministic total
// order (Time, Src, Seq), so the Calendar and the heap Queue dequeue in
// the identical order — the property test in calendar_test.go pins this.
// The repository benchmark (BenchmarkFELHeapVsCalendar) compares the two
// under kernel-like access patterns.
type Calendar struct {
	buckets   [][]sim.Event
	width     sim.Time // day width
	n         int
	lastT     sim.Time // dequeue cursor time
	lastB     int      // dequeue cursor bucket
	shrinkAt  int
	growAt    int
	minBucket int
}

// NewCalendar returns an empty calendar queue with the given initial day
// width (e.g. a typical event spacing; it self-tunes afterwards).
func NewCalendar(width sim.Time) *Calendar {
	if width <= 0 {
		width = 1000
	}
	c := &Calendar{}
	c.resize(8, width)
	return c
}

// Len returns the number of pending events.
func (c *Calendar) Len() int { return c.n }

// Empty reports whether no events are pending.
func (c *Calendar) Empty() bool { return c.n == 0 }

func (c *Calendar) bucketOf(t sim.Time) int {
	return int(uint64(t) / uint64(c.width) % uint64(len(c.buckets)))
}

// Push inserts ev.
func (c *Calendar) Push(ev sim.Event) {
	b := c.bucketOf(ev.Time)
	bucket := c.buckets[b]
	// Insertion sort from the back: kernel workloads push
	// mostly-ascending timestamps, so this is usually O(1).
	i := len(bucket)
	bucket = append(bucket, ev)
	for i > 0 && ev.Before(&bucket[i-1]) {
		bucket[i] = bucket[i-1]
		i--
	}
	bucket[i] = ev
	c.buckets[b] = bucket
	c.n++
	if ev.Time < c.lastT {
		// An event behind the cursor: rewind.
		c.lastT = ev.Time
		c.lastB = c.bucketOf(ev.Time)
	}
	if c.n > c.growAt {
		c.resize(len(c.buckets)*2, c.tuneWidth())
	}
}

// PushBatch inserts every event of evs. Calendar buckets are sorted
// arrays, so bulk heapification does not apply; insertion is already
// amortized O(1) per event and the loop keeps the resize bookkeeping of
// Push intact.
func (c *Calendar) PushBatch(evs []sim.Event) {
	for _, ev := range evs {
		c.Push(ev)
	}
}

// Pop removes and returns the earliest event; it panics on empty.
func (c *Calendar) Pop() sim.Event {
	if c.n == 0 {
		panic("eventq: Pop on empty calendar")
	}
	for {
		// Walk the current year from the cursor.
		yearEnd := c.lastT - c.lastT%c.width + c.width*sim.Time(len(c.buckets))
		for b, t := c.lastB, c.lastT; t < yearEnd; b, t = (b+1)%len(c.buckets), t+c.width {
			bucket := c.buckets[b]
			if len(bucket) > 0 && bucket[0].Time < t-t%c.width+c.width {
				ev := bucket[0]
				copy(bucket, bucket[1:])
				c.buckets[b] = bucket[:len(bucket)-1]
				c.n--
				c.lastT = ev.Time
				c.lastB = b
				if c.n < c.shrinkAt && len(c.buckets) > 8 {
					c.resize(len(c.buckets)/2, c.tuneWidth())
				}
				return ev
			}
		}
		// Nothing due this year: jump the cursor to the globally minimum
		// event (direct search, standard calendar fallback).
		min := c.minEvent()
		c.lastT = min
		c.lastB = c.bucketOf(min)
	}
}

// NextTime returns the earliest pending timestamp, or sim.MaxTime.
func (c *Calendar) NextTime() sim.Time {
	if c.n == 0 {
		return sim.MaxTime
	}
	return c.minEvent()
}

func (c *Calendar) minEvent() sim.Time {
	min := sim.MaxTime
	for _, bucket := range c.buckets {
		if len(bucket) > 0 && bucket[0].Time < min {
			min = bucket[0].Time
		}
	}
	return min
}

// PopBefore removes the earliest event if it is strictly before bound.
func (c *Calendar) PopBefore(bound sim.Time) (sim.Event, bool) {
	if c.n == 0 || c.NextTime() >= bound {
		return sim.Event{}, false
	}
	return c.Pop(), true
}

// Snapshot appends all pending events to dst in arbitrary order without
// modifying the calendar.
func (c *Calendar) Snapshot(dst []sim.Event) []sim.Event {
	for _, bucket := range c.buckets {
		dst = append(dst, bucket...)
	}
	return dst
}

// tuneWidth picks a day width from the current spread of pending events.
func (c *Calendar) tuneWidth() sim.Time {
	if c.n < 2 {
		return c.width
	}
	min, max := sim.MaxTime, sim.Time(0)
	for _, bucket := range c.buckets {
		for i := range bucket {
			if bucket[i].Time < min {
				min = bucket[i].Time
			}
			if bucket[i].Time > max {
				max = bucket[i].Time
			}
		}
	}
	w := (max - min) / sim.Time(c.n)
	if w <= 0 {
		w = 1
	}
	return w
}

func (c *Calendar) resize(nb int, width sim.Time) {
	old := c.buckets
	c.buckets = make([][]sim.Event, nb)
	c.width = width
	c.growAt = 2 * nb
	c.shrinkAt = nb / 2
	c.n = 0
	c.lastT = sim.MaxTime
	for _, bucket := range old {
		for _, ev := range bucket {
			c.Push(ev)
		}
	}
	if c.n > 0 {
		c.lastT = c.minEvent()
	} else {
		c.lastT = 0
	}
	c.lastB = c.bucketOf(c.lastT)
}
