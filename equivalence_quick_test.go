package unison_test

import (
	"testing"
	"testing/quick"

	"unison"
	"unison/internal/app"
	"unison/internal/core"
	"unison/internal/des"
	"unison/internal/netdev"
	"unison/internal/rng"
	"unison/internal/routing"
	"unison/internal/sim"
	"unison/internal/tcp"
	"unison/internal/topology"
)

// randomScenario builds a random connected topology with random link
// parameters and random TCP flows — all derived from one seed, so every
// kernel can reconstruct the identical instance.
func randomScenario(seed uint64) *app.Sim {
	r := rng.New(seed, 0xfade)
	nHosts := 4 + r.Intn(8)
	nSwitches := 2 + r.Intn(6)
	g := topology.New()
	var switches, hosts []sim.NodeID
	for i := 0; i < nSwitches; i++ {
		switches = append(switches, g.AddNode(topology.Switch, "s"))
	}
	randDelay := func() sim.Time { return sim.Time(r.Int63n(20_000) + 500) }
	randBW := func() int64 { return int64(r.Int63n(9)+1) * 1_000_000_000 }
	// Switch ring for connectivity plus random chords.
	for i := 0; i < nSwitches; i++ {
		g.AddLink(switches[i], switches[(i+1)%nSwitches], randBW(), randDelay())
	}
	for e := 0; e < r.Intn(6); e++ {
		a, b := r.Intn(nSwitches), r.Intn(nSwitches)
		if a != b && g.LinkBetween(switches[a], switches[b]) == topology.NoLink {
			g.AddLink(switches[a], switches[b], randBW(), randDelay())
		}
	}
	for i := 0; i < nHosts; i++ {
		h := g.AddNode(topology.Host, "h")
		hosts = append(hosts, h)
		g.AddLink(h, switches[r.Intn(nSwitches)], randBW(), randDelay())
	}
	stop := sim.Time(3 * sim.Millisecond)
	var flows []tcp.FlowSpec
	nFlows := 3 + r.Intn(20)
	for i := 0; i < nFlows; i++ {
		src := hosts[r.Intn(nHosts)]
		dst := hosts[r.Intn(nHosts)]
		if dst == src {
			dst = hosts[(int(src)+1)%nHosts]
			if dst == src {
				continue
			}
		}
		flows = append(flows, tcp.FlowSpec{
			ID:    unison.FlowID(len(flows)),
			Src:   src,
			Dst:   dst,
			Bytes: r.Int63n(200_000) + 1_000,
			Start: sim.Time(r.Int63n(int64(stop / 2))),
		})
	}
	if len(flows) == 0 {
		flows = append(flows, tcp.FlowSpec{ID: 0, Src: hosts[0], Dst: hosts[1], Bytes: 10_000})
	}
	queue := netdev.DropTailConfig(8 + r.Intn(100))
	if r.Intn(2) == 0 {
		queue = netdev.REDConfig(20 + r.Intn(100))
	}
	return app.New(g, routing.NewECMP(g, routing.Hops, seed), app.Config{
		Seed:   seed,
		NetCfg: netdev.Config{Queue: queue, ChecksumWork: false, Seed: seed},
		TCPCfg: tcp.DefaultConfig(),
		StopAt: stop,
		Flows:  flows,
	})
}

// TestEquivalenceQuick fuzzes the bit-identical cross-kernel property on
// random topologies, workloads and queue disciplines.
func TestEquivalenceQuick(t *testing.T) {
	f := func(seed uint64) bool {
		ref := randomScenario(seed)
		refStats, err := des.New().Run(ref.Model())
		if err != nil {
			t.Logf("seed %d: sequential: %v", seed, err)
			return false
		}
		for _, threads := range []int{2, 5} {
			sc := randomScenario(seed)
			st, err := core.New(core.Config{Threads: threads}).Run(sc.Model())
			if err != nil {
				t.Logf("seed %d threads %d: %v", seed, threads, err)
				return false
			}
			if sc.Mon.Fingerprint() != ref.Mon.Fingerprint() {
				t.Logf("seed %d threads %d: fingerprints diverge", seed, threads)
				return false
			}
			if st.Events != refStats.Events {
				t.Logf("seed %d threads %d: events %d vs %d", seed, threads, st.Events, refStats.Events)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
