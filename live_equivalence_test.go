package unison_test

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"unison"
	"unison/internal/obs/live"
	"unison/internal/sim"
)

// This file is the live-telemetry acceptance test: attaching a streaming
// monitor to a run must not perturb it. For every kernel kind, the
// deterministic artifact files produced with a live session attached are
// byte-identical to an unattached run, and the final snapshot a watcher
// fetches is field-for-field the run_stats.json on disk.

// liveDeterministicFiles is the bundle subset that is a pure function of
// the seeded scenario. run_stats.json and meta.json are excluded: they
// carry wall-clock times and (on probed runs) the imbalance/drops
// diagnostics, which is exactly the delta the bus is allowed to add.
var liveDeterministicFiles = []string{"series.csv", "trace.pcapng", "flow_report.json"}

func liveTestScenario(kernel unison.KernelSpec) *unison.Scenario {
	sc := unison.DefaultScenario()
	sc.Name = "live-equivalence-" + kernel.Kind
	sc.Kernel = kernel
	return sc
}

// liveRun executes the scenario once, optionally with a live session
// attached, writes the artifact bundle, and returns the bundle dir plus
// (for attached runs) the final snapshot fetched over HTTP.
func liveRun(t *testing.T, kernel unison.KernelSpec, attach bool) (string, *live.Snapshot) {
	t.Helper()
	sc := liveTestScenario(kernel)
	b, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, sampler := b.Sim.EnableNetObs(0, 0)

	var sess *live.Session
	if attach {
		sess, err = live.StartSession("livetest", sc.Stop.T(), "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		b.Observe = sess.Probe()
		if kernel.Kind == "sequential" {
			b.Progress = 10_000
		}
	}

	st, err := b.RunKernel(b.Sim.Model())
	if err != nil {
		t.Fatalf("%s: %v", kernel.Kind, err)
	}
	if sess != nil {
		sampler.Flush()
		sess.State.SetQueueInterval(sampler.Interval())
		sess.State.IngestRows(sampler.LiveDelta())
		sess.Finish(st)
	}

	dir := t.TempDir()
	if _, err := b.Bundle("livetest", st, sampler).Write(dir); err != nil {
		t.Fatal(err)
	}

	var snap *live.Snapshot
	if sess != nil {
		// Mirror Session.Close's ordering without tearing the server down:
		// Done is published only now that the bundle is on disk, then a
		// watcher fetches the final frame.
		sess.State.Finalize(st)
		snap, err = live.Fetch(context.Background(), sess.Server.Addr())
		if err != nil {
			t.Fatal(err)
		}
		sess.SetLinger(0)
		sess.Close()
	}
	return dir, snap
}

func compareBundleFiles(t *testing.T, name, dirA, dirB string) {
	t.Helper()
	for _, f := range liveDeterministicFiles {
		a, errA := os.ReadFile(filepath.Join(dirA, f))
		bb, errB := os.ReadFile(filepath.Join(dirB, f))
		if errA != nil || errB != nil {
			t.Errorf("%s: reading %s: %v / %v", name, f, errA, errB)
			continue
		}
		if !bytes.Equal(a, bb) {
			t.Errorf("%s: %s differs between unattached (%dB) and live-attached (%dB) runs",
				name, f, len(a), len(bb))
		}
	}
}

// TestLiveAttachDoesNotPerturbArtifacts is the bit-identity criterion:
// the same scenario with and without a live telemetry session attached
// yields byte-identical deterministic artifacts under every kernel.
func TestLiveAttachDoesNotPerturbArtifacts(t *testing.T) {
	kernels := []unison.KernelSpec{
		{Kind: "sequential"},
		{Kind: "unison", Threads: 4},
		{Kind: "hybrid", Threads: 2},
		{Kind: "barrier"},
		{Kind: "nullmsg"},
	}
	for _, k := range kernels {
		k := k
		t.Run(k.Kind, func(t *testing.T) {
			plain, _ := liveRun(t, k, false)
			attached, snap := liveRun(t, k, true)
			compareBundleFiles(t, k.Kind, plain, attached)

			// The watcher's final snapshot must agree field-for-field with
			// the run_stats.json written next to it.
			if snap == nil || !snap.Done || snap.Final == nil {
				t.Fatalf("no final snapshot: %+v", snap)
			}
			raw, err := os.ReadFile(filepath.Join(attached, "run_stats.json"))
			if err != nil {
				t.Fatal(err)
			}
			var want sim.RunStats
			if err := json.Unmarshal(raw, &want); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(&want, snap.Final) {
				t.Errorf("%s: final snapshot != run_stats.json\n snap: %+v\n file: %+v",
					k.Kind, snap.Final, &want)
			}
			// A probed parallel run must actually carry the diagnostics the
			// tentpole adds (the sequential kernel has one worker, so the
			// imbalance summary degenerates but still exists).
			if snap.Final.Imbalance == nil {
				t.Errorf("%s: probed run has no imbalance diagnostics", k.Kind)
			}
		})
	}
}
