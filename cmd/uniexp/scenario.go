package main

import (
	"fmt"
	"os"
	"time"

	"unison"
	"unison/internal/experiments"
	"unison/internal/obs/live"
	"unison/internal/sim"
)

// runScenario is the -scenario mode: it runs one declarative scenario
// across the whole kernel set and checks that every kernel produces the
// same result fingerprint — a parallel-efficiency experiment for an
// arbitrary user workload rather than a canned one. With liveAddr set,
// every kernel run streams telemetry to attached watchers; each run's
// BeginRun resets the live view, so a watcher sees the kernels go by one
// after another.
func runScenario(path string, seed uint64, seedSet bool, liveAddr string, linger time.Duration) error {
	base, err := unison.LoadScenario(path)
	if err != nil {
		return err
	}
	if seedSet {
		base.Seed = seed
	}

	var lsess *live.Session
	if liveAddr != "" {
		lsess, err = live.StartSession("uniexp", base.Stop.T(), liveAddr, nil)
		if err != nil {
			return fmt.Errorf("live: %w", err)
		}
		lsess.SetLinger(linger)
		fmt.Printf("live http://%s/live\n", lsess.Server.Addr())
	}

	type kspec struct {
		name    string
		kind    string
		threads int
	}
	probe, err := base.Build()
	if err != nil {
		return err
	}
	ks := []kspec{
		{"sequential", "sequential", 1},
		{"unison-2", "unison", 2},
		{"unison-4", "unison", 4},
	}
	if probe.ManualFor != nil {
		ks = append(ks, kspec{"hybrid-4", "hybrid", 4}, kspec{"barrier", "barrier", 1})
		if base.Traffic == nil || !base.Traffic.Stream {
			// Streaming workloads need a kernel that accepts global
			// events, which the null-message kernel does not.
			ks = append(ks, kspec{"nullmsg", "nullmsg", 1})
		}
	}

	tab := &experiments.Table{
		ID:      "scenario",
		Title:   fmt.Sprintf("%s across kernels (seed %d)", path, base.Seed),
		Columns: []string{"kernel", "wall s", "speedup", "events", "fingerprint", "collective"},
	}
	var seqWall float64
	var refFP uint64
	refSet, agree := false, true
	var lastSt *sim.RunStats
	for _, k := range ks {
		sc := *base
		sc.Kernel = unison.KernelSpec{Kind: k.kind, Threads: k.threads}
		b, err := sc.Build()
		if err != nil {
			return fmt.Errorf("%s: %w", k.name, err)
		}
		if lsess != nil {
			b.Observe = lsess.Probe()
			b.Progress = 50_000
		}
		start := time.Now()
		st, err := b.RunKernel(b.Sim.Model())
		if err != nil {
			return fmt.Errorf("%s: %w", k.name, err)
		}
		wall := time.Since(start).Seconds()
		lastSt = st
		fp := b.Sim.Mon.Fingerprint()
		if !refSet {
			refFP, refSet = fp, true
		} else if fp != refFP {
			agree = false
		}
		speedup := "-"
		if k.name == "sequential" {
			seqWall = wall
		} else if seqWall > 0 && wall > 0 {
			speedup = fmt.Sprintf("%.2fx", seqWall/wall)
		}
		collCell := "-"
		if cr := b.Sim.CollReport(b.Sim.Mon); cr != nil {
			if cr.CompletionNS >= 0 {
				collCell = fmt.Sprintf("%s %.3f ms", cr.Pattern, float64(cr.CompletionNS)/1e6)
			} else {
				collCell = fmt.Sprintf("%s incomplete", cr.Pattern)
			}
		}
		tab.AddRow(k.name, fmt.Sprintf("%.3f", wall), speedup,
			fmt.Sprint(st.Events), fmt.Sprintf("%016x", fp), collCell)
	}
	if lsess != nil {
		lsess.Finish(lastSt)
		defer lsess.Close()
	}
	if agree {
		tab.Note("all kernels agree on result fingerprint %016x", refFP)
	} else {
		tab.Note("FINGERPRINT MISMATCH: kernels disagree — determinism bug")
	}
	tab.Render(os.Stdout)
	if !agree {
		return fmt.Errorf("kernels disagree on the result fingerprint")
	}
	return nil
}
