// Command unimon attaches to a running unisim, unibench, uniexp, or
// unidist coordinator started with -live ADDR and renders its telemetry:
// a terminal dashboard (default), a single JSON snapshot (-once), or an
// NDJSON stream (-json) for scripts and CI.
//
//	unisim -stop 50ms -live :9900 &
//	unimon -live 127.0.0.1:9900
//
// The dashboard shows per-worker P/S/M bars, LBTS/virtual-time progress
// with a wall-clock ETA, events/s, FEL depth, the queue-depth heatmap,
// checkpoint age, rank liveness (distributed runs), and the live
// load-imbalance diagnostics. unimon exits when the run finishes; with
// -expect-stats FILE it then verifies the final live snapshot matches the
// run's run_stats.json field for field (the CI smoke check).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"strings"
	"time"

	"unison/internal/obs/live"
	"unison/internal/sim"
)

func main() {
	var (
		addr    = flag.String("live", "", "address of the run's -live endpoint (host:port)")
		once    = flag.Bool("once", false, "fetch one snapshot, print it as JSON, exit")
		ndjson  = flag.Bool("json", false, "stream snapshots as NDJSON instead of the dashboard")
		wait    = flag.Duration("attach-timeout", 10*time.Second, "how long to wait for the live endpoint to come up")
		total   = flag.Duration("timeout", 0, "give up after this long overall (0 = until the run ends)")
		expect  = flag.String("expect-stats", "", "after the run, verify the final snapshot matches this run_stats.json file")
		noClear = flag.Bool("no-clear", false, "dashboard: append frames instead of redrawing in place")
	)
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "unimon: -live ADDR is required")
		flag.Usage()
		os.Exit(2)
	}

	if _, err := live.WaitUp(*addr, *wait); err != nil {
		fatal(err)
	}

	ctx := context.Background()
	if *total > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *total)
		defer cancel()
	}

	if *once {
		snap, err := live.Fetch(ctx, *addr)
		if err != nil {
			fatal(err)
		}
		snap.Scrub()
		out, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
		verify(*expect, snap)
		return
	}

	var last *live.Snapshot
	enc := json.NewEncoder(os.Stdout)
	err := live.Watch(ctx, *addr, func(snap *live.Snapshot) bool {
		last = snap
		if *ndjson {
			snap.Scrub()
			if err := enc.Encode(snap); err != nil {
				return false
			}
		} else {
			render(os.Stdout, snap, *addr, !*noClear)
		}
		return !snap.Done
	})
	if err != nil {
		fatal(err)
	}
	if last == nil {
		fatal(fmt.Errorf("stream from %s ended before any snapshot arrived", *addr))
	}
	if !last.Done {
		// The stream can end on server shutdown or -timeout before the
		// final frame; one direct fetch usually still reaches it.
		if snap, err := live.Fetch(context.Background(), *addr); err == nil {
			last = snap
		}
	}
	if !*ndjson {
		fmt.Println()
	}
	verify(*expect, last)
}

// verify compares the final live snapshot against the run's serialized
// run_stats.json — the acceptance check that the live view and the
// artifact agree field for field. No-op without -expect-stats.
func verify(path string, snap *live.Snapshot) {
	if path == "" {
		return
	}
	if snap == nil || !snap.Done || snap.Final == nil {
		fatal(fmt.Errorf("expect-stats: no final snapshot received (run still going?)"))
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		fatal(fmt.Errorf("expect-stats: %w", err))
	}
	var want sim.RunStats
	if err := json.Unmarshal(raw, &want); err != nil {
		fatal(fmt.Errorf("expect-stats: parsing %s: %w", path, err))
	}
	if !reflect.DeepEqual(&want, snap.Final) {
		a, _ := json.Marshal(&want)      //unison:json-ok diagnostic stderr dump on mismatch, not a run artifact
		b, _ := json.Marshal(snap.Final) //unison:json-ok diagnostic stderr dump on mismatch, not a run artifact
		fmt.Fprintf(os.Stderr, "unimon: final snapshot disagrees with %s\n  file:     %s\n  snapshot: %s\n", path, a, b)
		os.Exit(1)
	}
	fmt.Printf("final snapshot matches %s\n", path)
}

// render draws one dashboard frame.
func render(w *os.File, s *live.Snapshot, addr string, clear bool) {
	var b strings.Builder
	if clear {
		b.WriteString("\033[H\033[2J")
	}
	state := "running"
	if s.Done {
		state = "done"
	}
	fmt.Fprintf(&b, "unimon — %s @ %s   kernel %s   workers %d   LPs %d   [%s]\n",
		s.Tool, addr, s.Kernel, s.Workers, s.LPs, state)

	if s.StopAtNS > 0 {
		fmt.Fprintf(&b, "progress  %s %5.1f%%  vtime %s / %s  elapsed %s  eta %s\n",
			bar(s.Progress, 24), 100*s.Progress,
			simMS(s.LBTSNS), simMS(s.StopAtNS),
			secs(s.ElapsedSeconds), eta(s.ETASeconds))
	} else {
		fmt.Fprintf(&b, "progress  vtime %s  elapsed %s\n", simMS(s.LBTSNS), secs(s.ElapsedSeconds))
	}
	fmt.Fprintf(&b, "events    %s (%s/s)   rounds %d   FEL %d   bus drops %d   ckpt %s\n",
		count(float64(s.Events)), count(s.EventsPerSec), s.Rounds, s.FELDepth, s.BusDrops, ckpt(s.CkptAgeSeconds))

	if len(s.WorkerViews) > 0 {
		b.WriteString("workers   P/S/M\n")
		for _, v := range s.WorkerViews {
			fmt.Fprintf(&b, "  w%-3d %s P %4.1f%% S %4.1f%% M %4.1f%%  ev %-8s fel %-6d lbts %s",
				v.Worker, psmBar(v.PShare, v.SShare, v.MShare, 20),
				100*v.PShare, 100*v.SShare, 100*v.MShare,
				count(float64(v.Events)), v.FELDepth, simMS(v.LBTSNS))
			if v.Migrations > 0 {
				fmt.Fprintf(&b, " migr %d", v.Migrations)
			}
			if v.StragglerRounds > 0 {
				fmt.Fprintf(&b, " strag %d", v.StragglerRounds)
			}
			b.WriteByte('\n')
		}
	}
	if im := s.Imbalance; im != nil {
		fmt.Fprintf(&b, "%s\n", im)
	}
	if len(s.Ranks) > 0 {
		b.WriteString("ranks    ")
		for _, r := range s.Ranks {
			mark := "up"
			if !r.Alive {
				mark = "STALE"
			}
			fmt.Fprintf(&b, " r%d %s %.1fs (%d rounds, %s ev)",
				r.Rank, mark, r.LastSeenSeconds, r.Rounds, count(float64(r.Events)))
		}
		b.WriteByte('\n')
	}
	if len(s.Queues) > 0 {
		b.WriteString("queues    hottest:")
		n := len(s.Queues)
		if n > 6 {
			n = 6
		}
		for _, q := range s.Queues[:n] {
			fmt.Fprintf(&b, "  n%d/l%d d%d(max %d)", q.Node, q.Link, q.Depth, q.MaxDepth)
			if q.Drops > 0 {
				fmt.Fprintf(&b, " drop %d", q.Drops)
			}
			if q.Util > 0 {
				fmt.Fprintf(&b, " %2.0f%%", 100*q.Util)
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprint(w, b.String())
}

func bar(p float64, width int) string {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	full := int(p * float64(width))
	return "[" + strings.Repeat("#", full) + strings.Repeat(".", width-full) + "]"
}

// psmBar renders the worker's time split as one segmented bar.
func psmBar(p, s, m float64, width int) string {
	pw := int(p * float64(width))
	sw := int(s * float64(width))
	mw := width - pw - sw
	if mw < 0 {
		mw = 0
	}
	return "[" + strings.Repeat("P", pw) + strings.Repeat("S", sw) + strings.Repeat("M", mw) + "]"
}

func simMS(ns int64) string { return fmt.Sprintf("%.3fms", float64(ns)/1e6) }
func secs(s float64) string { return fmt.Sprintf("%.1fs", s) }
func eta(s float64) string {
	if s < 0 {
		return "?"
	}
	return secs(s)
}

func ckpt(age float64) string {
	if age < 0 {
		return "none"
	}
	return fmt.Sprintf("%.0fs ago", age)
}

func count(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "unimon: %v\n", err)
	os.Exit(1)
}
