// Command unisoncheck runs the unison analyzer suite — the syntactic
// determinism/ownership analyzers (wallclock, maporder, owner, seedflow,
// deprecated, arena — see DESIGN.md §9) and the flow-sensitive ones
// (ckptfields, poolescape, statejson — see DESIGN.md §14) — over Go
// packages. It works two ways:
//
// Standalone, on package patterns (exit 1 if anything is found;
// -json or -sarif switch stdout to machine-readable findings):
//
//	go run ./cmd/unisoncheck ./...
//	unisoncheck -tests=false ./internal/core/
//	unisoncheck -sarif ./... > findings.sarif
//
// Or as a go vet tool, which lets the go command drive per-package
// analysis with its build cache (exit 2 on findings, the vet convention):
//
//	go build -o "$(go env GOPATH)/bin/unisoncheck" ./cmd/unisoncheck
//	go vet -vettool="$(which unisoncheck)" ./...
//
// The vet integration implements the unitchecker protocol: go vet probes
// the tool with -V=full (cache key) and -flags (supported flags), then
// invokes it once per package with a *.cfg JSON file describing sources,
// the import map, and export-data locations.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"unison/internal/analysis"
	"unison/internal/analysis/analyzers"
	"unison/internal/analysis/load"
)

func main() {
	// go vet probes: must be handled before normal flag parsing because
	// the go command passes them in its own formats.
	if len(os.Args) == 2 {
		switch {
		case strings.HasPrefix(os.Args[1], "-V="):
			printVersion()
			return
		case os.Args[1] == "-flags":
			// No analyzer-selection flags yet; report none so go vet
			// passes only the cfg file.
			fmt.Println("[]")
			return
		case strings.HasSuffix(os.Args[1], ".cfg"):
			os.Exit(runVet(os.Args[1]))
		}
	}

	tests := flag.Bool("tests", true, "also analyze test files (per-package test variants)")
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	asSARIF := flag.Bool("sarif", false, "emit findings as SARIF 2.1.0 on stdout")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: unisoncheck [-tests=false] [-json|-sarif] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *asJSON && *asSARIF {
		fatal(fmt.Errorf("-json and -sarif are mutually exclusive"))
	}

	if *list {
		for _, a := range analyzers.All() {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Printf("%-12s %s\n", a.Name, doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, fset, err := load.Load(wd, patterns, *tests)
	if err != nil {
		fatal(err)
	}

	var findings []finding
	for _, pkg := range pkgs {
		pass := &analysis.Pass{
			Fset:       fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.Info,
			Directives: analysis.NewDirectives(fset, pkg.Files),
		}
		for _, d := range runSuite(pass) {
			f := resolve(fset, wd, d)
			findings = append(findings, f)
			if !*asJSON && !*asSARIF {
				printDiag(f)
			}
		}
	}
	switch {
	case *asJSON:
		if err := writeJSON(findings); err != nil {
			fatal(err)
		}
	case *asSARIF:
		if err := writeSARIF(findings); err != nil {
			fatal(err)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "unisoncheck: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// runSuite applies every analyzer to the pass's package, returning the
// diagnostics sorted by position, de-duplicated across test variants by
// the caller's package selection.
func runSuite(pass *analysis.Pass) []diag {
	var out []diag
	for _, a := range analyzers.All() {
		p := *pass
		p.Analyzer = a
		p.Report = func(d analysis.Diagnostic) { out = append(out, diag{a.Name, d}) }
		if err := a.Run(&p); err != nil {
			fatal(fmt.Errorf("%s: %s: %v", pass.Pkg.Path(), a.Name, err))
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].d.Pos < out[j].d.Pos })
	return out
}

type diag struct {
	analyzer string
	d        analysis.Diagnostic
}

func printDiag(f finding) {
	fmt.Printf("%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Column, f.Analyzer, f.Message)
	for _, fix := range f.Fixes {
		fmt.Printf("\tsuggested fix: %s\n", fix)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "unisoncheck:", err)
	os.Exit(3)
}

// printVersion emits the -V=full line the go command uses as a cache
// key; the hash of the executable makes rebuilt tools invalidate cached
// vet results, as x/tools' unitchecker does.
func printVersion() {
	progname := strings.TrimSuffix(filepath.Base(os.Args[0]), ".exe")
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", progname, h.Sum(nil))
}
