// Command unisoncheck runs the unison analyzer suite (wallclock,
// maporder, owner, seedflow, deprecated — see DESIGN.md §9) over Go
// packages. It works two ways:
//
// Standalone, on package patterns (exit 1 if anything is found):
//
//	go run ./cmd/unisoncheck ./...
//	unisoncheck -tests=false ./internal/core/
//
// Or as a go vet tool, which lets the go command drive per-package
// analysis with its build cache (exit 2 on findings, the vet convention):
//
//	go build -o "$(go env GOPATH)/bin/unisoncheck" ./cmd/unisoncheck
//	go vet -vettool="$(which unisoncheck)" ./...
//
// The vet integration implements the unitchecker protocol: go vet probes
// the tool with -V=full (cache key) and -flags (supported flags), then
// invokes it once per package with a *.cfg JSON file describing sources,
// the import map, and export-data locations.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"unison/internal/analysis"
	"unison/internal/analysis/analyzers"
	"unison/internal/analysis/load"
)

func main() {
	// go vet probes: must be handled before normal flag parsing because
	// the go command passes them in its own formats.
	if len(os.Args) == 2 {
		switch {
		case strings.HasPrefix(os.Args[1], "-V="):
			printVersion()
			return
		case os.Args[1] == "-flags":
			// No analyzer-selection flags yet; report none so go vet
			// passes only the cfg file.
			fmt.Println("[]")
			return
		case strings.HasSuffix(os.Args[1], ".cfg"):
			os.Exit(runVet(os.Args[1]))
		}
	}

	tests := flag.Bool("tests", true, "also analyze test files (per-package test variants)")
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: unisoncheck [-tests=false] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers.All() {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Printf("%-12s %s\n", a.Name, doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, fset, err := load.Load(wd, patterns, *tests)
	if err != nil {
		fatal(err)
	}

	found := 0
	for _, pkg := range pkgs {
		pass := &analysis.Pass{
			Fset:       fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.Info,
			Directives: analysis.NewDirectives(fset, pkg.Files),
		}
		for _, d := range runSuite(pass) {
			found++
			printDiag(fset, wd, d)
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "unisoncheck: %d finding(s)\n", found)
		os.Exit(1)
	}
}

// runSuite applies every analyzer to the pass's package, returning the
// diagnostics sorted by position, de-duplicated across test variants by
// the caller's package selection.
func runSuite(pass *analysis.Pass) []diag {
	var out []diag
	for _, a := range analyzers.All() {
		p := *pass
		p.Analyzer = a
		p.Report = func(d analysis.Diagnostic) { out = append(out, diag{a.Name, d}) }
		if err := a.Run(&p); err != nil {
			fatal(fmt.Errorf("%s: %s: %v", pass.Pkg.Path(), a.Name, err))
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].d.Pos < out[j].d.Pos })
	return out
}

type diag struct {
	analyzer string
	d        analysis.Diagnostic
}

func printDiag(fset *token.FileSet, wd string, d diag) {
	pos := fset.Position(d.d.Pos)
	name := pos.Filename
	if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
		name = rel
	}
	fmt.Printf("%s:%d:%d: [%s] %s\n", name, pos.Line, pos.Column, d.analyzer, d.d.Message)
	for _, fix := range d.d.SuggestedFixes {
		fmt.Printf("\tsuggested fix: %s\n", fix.Message)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "unisoncheck:", err)
	os.Exit(3)
}

// printVersion emits the -V=full line the go command uses as a cache
// key; the hash of the executable makes rebuilt tools invalidate cached
// vet results, as x/tools' unitchecker does.
func printVersion() {
	progname := strings.TrimSuffix(filepath.Base(os.Args[0]), ".exe")
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", progname, h.Sum(nil))
}
