package main

// The go vet -vettool unit-checker protocol: the go command hands the
// tool one JSON config file per package, naming the sources to analyze
// and the export-data files of every dependency it already compiled.
// Diagnostics go to stderr, exit code 2 means findings — the same
// contract x/tools' unitchecker implements. The tool must also write the
// (possibly empty) facts file the config points at, or the go command
// treats the run as failed; this suite keeps no cross-package facts, so
// the file is always empty.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"unison/internal/analysis"
	"unison/internal/analysis/load"
)

// vetConfig mirrors the fields of the go command's vet.cfg files this
// driver needs (the full struct has more; unknown fields are ignored).
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string
	ImportMap    map[string]string
	PackageFile  map[string]string
	VetxOnly     bool
	VetxOutput   string

	SucceedOnTypecheckFailure bool
}

// runVet analyzes the single package described by cfgFile, returning the
// process exit code.
func runVet(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "unisoncheck:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "unisoncheck: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// Facts file first: even a finding-free (or source-free) run must
	// produce it for the go command's cache.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "unisoncheck:", err)
			return 1
		}
	}
	if cfg.VetxOnly || len(cfg.GoFiles) == 0 {
		return 0
	}
	if cfg.Compiler != "" && cfg.Compiler != "gc" {
		fmt.Fprintf(os.Stderr, "unisoncheck: unsupported compiler %q\n", cfg.Compiler)
		return 1
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "unisoncheck:", err)
			return 1
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := load.NewInfo()
	conf := types.Config{
		Importer:  vetImporter{importer.ForCompiler(fset, "gc", lookup)},
		GoVersion: cfg.GoVersion,
		Error:     func(error) {},
	}
	// Test variants are named "p [p.test]"; the analyzers classify by the
	// plain import path.
	pkgPath := cfg.ImportPath
	if i := strings.Index(pkgPath, " ["); i >= 0 {
		pkgPath = pkgPath[:i]
	}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "unisoncheck: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	pass := &analysis.Pass{
		Fset:       fset,
		Files:      files,
		Pkg:        tpkg,
		TypesInfo:  info,
		Directives: analysis.NewDirectives(fset, files),
	}
	diags := runSuite(pass)
	for _, d := range diags {
		pos := fset.Position(d.d.Pos)
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", pos, d.analyzer, d.d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// vetImporter adds the "unsafe" special case the gc importer skips when
// given an explicit lookup function.
type vetImporter struct{ imp types.Importer }

func (v vetImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return v.imp.Import(path)
}
