package main

import (
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"unison/internal/analysis/analyzers"
)

// finding is one diagnostic resolved to a file position — the unit both
// machine formats serialize.
type finding struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Column   int      `json:"column"`
	Analyzer string   `json:"analyzer"`
	Message  string   `json:"message"`
	Fixes    []string `json:"suggested_fixes,omitempty"`
}

func resolve(fset *token.FileSet, wd string, d diag) finding {
	pos := fset.Position(d.d.Pos)
	name := pos.Filename
	if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
		name = rel
	}
	f := finding{
		File:     name,
		Line:     pos.Line,
		Column:   pos.Column,
		Analyzer: d.analyzer,
		Message:  d.d.Message,
	}
	for _, fix := range d.d.SuggestedFixes {
		f.Fixes = append(f.Fixes, fix.Message)
	}
	return f
}

// writeJSON renders findings as one indented JSON array on stdout — the
// shape CI annotations and editor integrations consume directly.
func writeJSON(findings []finding) error {
	if findings == nil {
		findings = []finding{}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	//unison:json-ok diagnostics carry no float fields; positions are ints
	return enc.Encode(findings)
}

// SARIF 2.1.0 (minimal subset): one run, one rule per analyzer, one
// result per finding. Enough for GitHub code scanning and sarif-viewer.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

func writeSARIF(findings []finding) error {
	driver := sarifDriver{Name: "unisoncheck"}
	for _, a := range analyzers.All() {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifText{Text: doc},
		})
	}
	results := []sarifResult{}
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifText{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(f.File)},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	//unison:json-ok SARIF payload is strings and int positions
	return enc.Encode(log)
}
