// Command unisim runs one network simulation from command-line flags and
// prints flow statistics — the quick way to exercise any kernel on any of
// the built-in topologies.
//
// Usage examples:
//
//	unisim -topo fattree -k 4 -kernel unison -threads 8 -stop 2ms
//	unisim -topo torus -rows 8 -cols 8 -kernel sequential -load 0.3
//	unisim -topo dumbbell -n 8 -kernel barrier
//	unisim -topo fattree -k 4 -kernel vunison -threads 24   (virtual testbed)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"unison"
	"unison/internal/netobs"
	"unison/internal/pdes"
	"unison/internal/sim"
	"unison/internal/topology"
	"unison/internal/trace"
	"unison/internal/vtime"
)

func main() {
	var (
		topo    = flag.String("topo", "fattree", "topology: fattree | torus | bcube | spineleaf | dumbbell | geant | chinanet")
		k       = flag.Int("k", 4, "fat-tree arity")
		rows    = flag.Int("rows", 6, "torus rows")
		cols    = flag.Int("cols", 6, "torus cols")
		n       = flag.Int("n", 4, "bcube ports / dumbbell pairs / spine-leaf hosts per leaf")
		bwGbps  = flag.Float64("bw", 10, "link bandwidth in Gbit/s")
		delay   = flag.Duration("delay", 3_000, "link delay (ns when unitless)")
		kernel  = flag.String("kernel", "unison", "kernel: sequential | unison | hybrid | barrier | nullmsg | vseq | vbarrier | vnullmsg | vunison")
		threads = flag.Int("threads", 4, "worker threads (unison/hybrid/virtual cores)")
		stop    = flag.Duration("stop", 2_000_000, "simulated duration (ns when unitless)")
		load    = flag.Float64("load", 0.3, "offered load as a fraction of bisection bandwidth")
		incast  = flag.Float64("incast", 0, "incast traffic ratio [0,1]")
		seed    = flag.Uint64("seed", 42, "random seed")
		web     = flag.Bool("websearch", false, "use the web-search flow size CDF (default: gRPC)")
		traceF  = flag.String("trace", "", "write a packet trace (UTR1 binary) to this file")
		artif   = flag.String("artifacts", "", "write a run-artifact bundle to this directory")
		stream  = flag.Bool("stream", false, "generate the workload lazily as virtual time advances (O(window) memory; needs a kernel that accepts global events, so not nullmsg/vnullmsg)")
		ckptDir = flag.String("checkpoint", "", "write crash-consistent snapshots into this directory")
		ckptN   = flag.Uint64("checkpoint-every", 100, "checkpoint cadence: synchronization rounds (events for the sequential kernel)")
		ckptT   = flag.Duration("checkpoint-every-time", 0, "checkpoint cadence in simulated time (the null-message kernel's epoch length; ns when unitless)")
		restore = flag.String("restore", "", "resume from this snapshot file instead of starting fresh")
	)
	flag.Parse()

	g, hosts, manual := buildTopology(*topo, *k, *rows, *cols, *n,
		int64(*bwGbps*1e9), sim.Time(delay.Nanoseconds()))

	sizes := unison.GRPCCDF()
	if *web {
		sizes = unison.WebSearchCDF()
	}
	stopAt := sim.Time(stop.Nanoseconds())
	tc := unison.TrafficConfig{
		Seed:         *seed,
		Hosts:        hosts,
		Sizes:        sizes,
		Load:         *load,
		BisectionBps: g.BisectionBandwidth(),
		Start:        0,
		End:          stopAt * 3 / 4,
		IncastRatio:  *incast,
	}
	scCfg := unison.ScenarioConfig{
		Seed:   *seed,
		NetCfg: unison.DefaultNetConfig(*seed),
		TCPCfg: unison.DefaultTCP(),
		StopAt: stopAt,
	}
	var nflows int
	if *stream {
		switch strings.ToLower(*kernel) {
		case "nullmsg", "vnullmsg":
			fmt.Fprintf(os.Stderr, "unisim: -stream needs a kernel that accepts global events; %s does not (drop -stream for the materialized workload)\n", *kernel)
			os.Exit(2)
		}
		scCfg.FlowSrc = unison.NewTrafficStream(tc)
		scCfg.FlowCount = unison.CountTraffic(tc)
		nflows = scCfg.FlowCount
	} else {
		flows := unison.GenerateTraffic(tc)
		scCfg.Flows = flows
		nflows = len(flows)
	}
	sc := unison.NewScenario(g, unison.NewECMP(g, unison.Hops, *seed), scCfg)
	if *traceF != "" {
		sc.Net.Tracer = trace.NewCollector(g.N(), 0)
	}
	var sampler *netobs.Sampler
	if *artif != "" {
		_, sampler = sc.EnableNetObs(0, 0)
	}

	m := sc.Model()
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "unisim: %v\n", err)
			os.Exit(1)
		}
		unison.EnableCheckpoints(m, sc.CkptTarget(), *ckptDir, *ckptN, sim.Time(ckptT.Nanoseconds()), nil)
	}
	if *restore != "" {
		if err := unison.RestoreCheckpoint(m, sc.CkptTarget(), *restore); err != nil {
			fmt.Fprintf(os.Stderr, "unisim: %v\n", err)
			os.Exit(1)
		}
	}

	st, err := runKernel(*kernel, *threads, g, manual, m)
	if err != nil {
		fmt.Fprintf(os.Stderr, "unisim: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("kernel      %s\n", st.Kernel)
	fmt.Printf("nodes       %d (%d hosts), %d LPs\n", g.N(), len(hosts), st.LPs)
	fmt.Printf("flows       %d generated, %d completed\n", nflows, sc.Mon.Completed())
	fmt.Printf("events      %d in %d rounds\n", st.Events, st.Rounds)
	fmt.Printf("sim time    %v reached\n", st.EndTime)
	fmt.Printf("wall time   %.3fs", float64(st.WallNS)/1e9)
	if st.VirtualT > 0 {
		fmt.Printf(" (virtual testbed time %.3fs)", float64(st.VirtualT)/1e9)
	}
	fmt.Println()
	fmt.Printf("P/S/M       %.1f%% / %.1f%% / %.1f%%\n",
		ratio(st.TotalP(), st), ratio(st.TotalS(), st), ratio(st.TotalM(), st))
	if sc.Mon.Completed() > 0 {
		fmt.Printf("mean FCT    %.3f ms\n", sc.Mon.MeanFCTms())
		fmt.Printf("mean RTT    %.3f ms\n", sc.Mon.MeanRTTms())
		fmt.Printf("goodput     %.1f Mbps per flow\n", sc.Mon.MeanGoodputMbps())
	}
	fmt.Printf("retransmits %d, drops %d\n", sc.Mon.TotalRetransmits(), sc.Net.Drops())
	fmt.Printf("result hash %016x\n", sc.Mon.Fingerprint())
	if *traceF != "" {
		f, err := os.Create(*traceF)
		if err != nil {
			fmt.Fprintf(os.Stderr, "unisim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if _, err := sc.Net.Tracer.WriteTo(f); err != nil {
			fmt.Fprintf(os.Stderr, "unisim: writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace       %d records -> %s\n", sc.Net.Tracer.Count(), *traceF)
	}
	if *artif != "" {
		sampler.Flush()
		b := &netobs.Bundle{
			Meta: netobs.Meta{
				Tool: "unisim", Kernel: st.Kernel, Topology: *topo,
				Seed: *seed, Workers: *threads, StopNS: int64(stopAt),
				Flows: sc.Mon.Flows(),
			},
			Stats:        st,
			Mon:          sc.Mon,
			RefBandwidth: int64(*bwGbps * 1e9),
			Rows:         sampler.Rows(),
			Interval:     sampler.Interval(),
			Trace:        sc.Net.Tracer.Merged(),
		}
		files, err := b.Write(*artif)
		if err != nil {
			fmt.Fprintf(os.Stderr, "unisim: artifacts: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("artifacts   %s (%v)\n", *artif, files)
	}
}

func ratio(v int64, st *sim.RunStats) float64 {
	tot := st.TotalP() + st.TotalS() + st.TotalM()
	if tot == 0 {
		return 0
	}
	return 100 * float64(v) / float64(tot)
}

func buildTopology(name string, k, rows, cols, n int, bw int64, delay sim.Time) (*topology.Graph, []sim.NodeID, []int32) {
	switch strings.ToLower(name) {
	case "fattree":
		ft := topology.BuildFatTree(topology.FatTreeK(k, bw, delay))
		return ft.Graph, ft.Hosts(), pdes.FatTreeManual(ft, k)
	case "torus":
		tr := topology.BuildTorus2D(rows, cols, bw, delay)
		return tr.Graph, tr.Hosts(), pdes.TorusManual(tr, 4)
	case "bcube":
		b := topology.BuildBCube(n, 1, bw, delay)
		return b.Graph, b.Hosts(), pdes.BCubeManual(b, len(b.BCube0))
	case "spineleaf":
		s := topology.BuildSpineLeaf(2, 4, n, bw, delay)
		return s.Graph, s.Hosts(), pdes.SpineLeafManual(s, 4)
	case "dumbbell":
		d := topology.BuildDumbbell(n, bw, bw, delay, 5*delay)
		return d.Graph, d.Hosts(), pdes.DumbbellManual(d)
	case "geant":
		w := topology.Geant()
		return w.Graph, w.Hosts(), nil
	case "chinanet":
		w := topology.ChinaNet()
		return w.Graph, w.Hosts(), nil
	default:
		fmt.Fprintf(os.Stderr, "unisim: unknown topology %q\n", name)
		os.Exit(2)
		return nil, nil, nil
	}
}

func runKernel(name string, threads int, g *topology.Graph, manual []int32, m *sim.Model) (*sim.RunStats, error) {
	switch strings.ToLower(name) {
	case "sequential", "seq":
		return unison.NewSequential().Run(m)
	case "unison":
		return unison.NewUnison(unison.UnisonConfig{Threads: threads}).Run(m)
	case "hybrid":
		if manual == nil {
			return nil, fmt.Errorf("hybrid kernel needs a host partition; topology %q has none", name)
		}
		return unison.NewHybrid(unison.HybridConfig{HostOf: manual, ThreadsPerHost: threads}).Run(m)
	case "barrier":
		if manual == nil {
			return nil, fmt.Errorf("the barrier kernel needs a manual partition; this topology has no recipe (use unison)")
		}
		return unison.NewBarrier(unison.ManualPartition(g, manual)).Run(m)
	case "nullmsg":
		if manual == nil {
			return nil, fmt.Errorf("the null message kernel needs a manual partition; this topology has no recipe (use unison)")
		}
		return unison.NewNullMessage(unison.ManualPartition(g, manual)).Run(m)
	case "vseq":
		return unison.VirtualRun(m, unison.VirtualConfig{Algo: vtime.Sequential})
	case "vbarrier":
		return unison.VirtualRun(m, unison.VirtualConfig{Algo: vtime.Barrier, LPOf: manual})
	case "vnullmsg":
		return unison.VirtualRun(m, unison.VirtualConfig{Algo: vtime.NullMessage, LPOf: manual})
	case "vunison":
		return unison.VirtualRun(m, unison.VirtualConfig{Algo: vtime.Unison, Cores: threads})
	default:
		return nil, fmt.Errorf("unknown kernel %q", name)
	}
}
