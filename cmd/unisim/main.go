// Command unisim runs one network simulation and prints flow statistics —
// the quick way to exercise any kernel on any of the built-in topologies.
//
// The run is described by a declarative scenario (-scenario FILE, JSON or
// TOML); without one, the built-in default scenario applies (k=4 fat-tree,
// 30% gRPC load, Unison kernel). Explicitly passed flags override the
// scenario in either case.
//
// Usage examples:
//
//	unisim -scenario examples/allreduce/ring.scenario.json
//	unisim -scenario wan.scenario.toml -kernel sequential -seed 7
//	unisim -topo fattree -k 4 -kernel unison -threads 8 -stop 2ms
//	unisim -topo dumbbell -n 8 -kernel barrier
package main

import (
	"flag"
	"fmt"
	"os"

	"unison"
	"unison/internal/obs/live"
	"unison/internal/sim"
	"unison/internal/trace"
)

// liveProgressEvery is the sequential kernel's progress-record cadence
// under -live; round-based kernels report every round regardless.
const liveProgressEvery = 50_000

func main() {
	var (
		scFile  = flag.String("scenario", "", "declarative scenario file (JSON, or TOML by extension); other flags override it")
		topo    = flag.String("topo", "fattree", "topology: fattree | torus | bcube | spineleaf | dumbbell | geant | chinanet")
		k       = flag.Int("k", 4, "fat-tree arity")
		rows    = flag.Int("rows", 6, "torus rows")
		cols    = flag.Int("cols", 6, "torus cols")
		n       = flag.Int("n", 4, "bcube ports / dumbbell pairs / spine-leaf hosts per leaf")
		bwGbps  = flag.Float64("bw", 10, "link bandwidth in Gbit/s")
		delay   = flag.Duration("delay", 3_000, "link delay (ns when unitless)")
		kernel  = flag.String("kernel", "unison", "kernel: sequential | unison | hybrid | barrier | nullmsg | vseq | vbarrier | vnullmsg | vunison")
		threads = flag.Int("threads", 4, "worker threads (unison/hybrid/virtual cores)")
		stop    = flag.Duration("stop", 2_000_000, "simulated duration (ns when unitless)")
		load    = flag.Float64("load", 0.3, "offered load as a fraction of bisection bandwidth")
		incast  = flag.Float64("incast", 0, "incast traffic ratio [0,1]")
		victim  = flag.Int("victim", -1, "incast victim host index (-1: generator default, the last host)")
		seed    = flag.Uint64("seed", 42, "random seed")
		web     = flag.Bool("websearch", false, "use the web-search flow size CDF (default: gRPC)")
		traceF  = flag.String("trace", "", "write a packet trace (UTR1 binary) to this file")
		artif   = flag.String("artifacts", "", "write a run-artifact bundle to this directory")
		stream  = flag.Bool("stream", false, "generate the workload lazily as virtual time advances (O(window) memory; needs a kernel that accepts global events, so not nullmsg/vnullmsg)")
		ckptDir = flag.String("checkpoint", "", "write crash-consistent snapshots into this directory")
		ckptN   = flag.Uint64("checkpoint-every", 100, "checkpoint cadence: synchronization rounds (events for the sequential kernel)")
		ckptT   = flag.Duration("checkpoint-every-time", 0, "checkpoint cadence in simulated time (the null-message kernel's epoch length; ns when unitless)")
		restore = flag.String("restore", "", "resume from this snapshot file instead of starting fresh")
		liveA   = flag.String("live", "", "serve live telemetry (JSON + SSE for unimon) on this address (\":0\" picks a port)")
		lingerD = flag.Duration("live-linger", live.DefaultLinger, "after the run, wait up to this long for an attached watcher to read the final snapshot")
	)
	flag.Parse()

	sc := unison.DefaultScenario()
	if *scFile != "" {
		var err error
		if sc, err = unison.LoadScenario(*scFile); err != nil {
			fmt.Fprintf(os.Stderr, "unisim: %v\n", err)
			os.Exit(2)
		}
	}
	ov := &unison.ScenarioOverrides{}
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "seed":
			ov.Seed = seed
		case "stop":
			t := sim.Time(stop.Nanoseconds())
			ov.Stop = &t
		case "kernel":
			ov.Kernel = kernel
		case "threads":
			ov.Threads = threads
		case "topo":
			ov.Topo = topo
		case "k":
			ov.K = k
		case "rows":
			ov.Rows = rows
		case "cols":
			ov.Cols = cols
		case "n":
			ov.N = n
		case "bw":
			ov.BwGbps = bwGbps
		case "delay":
			d := sim.Time(delay.Nanoseconds())
			ov.Delay = &d
		case "load":
			ov.Load = load
		case "incast":
			ov.Incast = incast
		case "victim":
			if *victim >= 0 {
				ov.Victim = victim
			}
		case "websearch":
			sizes := "grpc"
			if *web {
				sizes = "websearch"
			}
			ov.Sizes = &sizes
		case "stream":
			ov.Stream = stream
		case "artifacts":
			ov.ArtifactsDir = artif
		}
	})
	sc.Override(ov)

	b, err := sc.Build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "unisim: %v\n", err)
		os.Exit(2)
	}
	if *traceF != "" {
		b.Sim.Net.Tracer = trace.NewCollector(b.G.N(), 0)
	}
	var sampler *unison.NetSampler
	if sc.Artifacts.Dir != "" {
		_, sampler = b.Sim.EnableNetObs(sc.Artifacts.Interval.T(), 0)
	}

	var lsess *live.Session
	if *liveA != "" {
		lsess, err = live.StartSession("unisim", sc.Stop.T(), *liveA, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "unisim: live: %v\n", err)
			os.Exit(1)
		}
		lsess.SetLinger(*lingerD)
		b.Observe = lsess.Probe()
		b.Progress = liveProgressEvery
		fmt.Printf("live        http://%s/live\n", lsess.Server.Addr())
	}

	m := b.Sim.Model()
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "unisim: %v\n", err)
			os.Exit(1)
		}
		unison.EnableCheckpoints(m, b.Sim.CkptTarget(), *ckptDir, *ckptN, sim.Time(ckptT.Nanoseconds()), nil)
	}
	if *restore != "" {
		if err := unison.RestoreCheckpoint(m, b.Sim.CkptTarget(), *restore); err != nil {
			fmt.Fprintf(os.Stderr, "unisim: %v\n", err)
			os.Exit(1)
		}
	}

	st, err := b.RunKernel(m)
	if err != nil {
		fmt.Fprintf(os.Stderr, "unisim: %v\n", err)
		os.Exit(1)
	}
	if lsess != nil {
		if sampler != nil {
			// The run is over, so reading the sampler is race-free; the
			// full row set becomes the final queue heatmap.
			sampler.Flush()
			lsess.State.SetQueueInterval(sampler.Interval())
			lsess.State.IngestRows(sampler.LiveDelta())
		}
		// Imbalance diagnostics + drop counters land in st before the
		// bundle serializes it, and the final live snapshot carries the
		// same stats object — watchers and run_stats.json agree.
		lsess.Finish(st)
		defer lsess.Close()
	}

	fmt.Printf("kernel      %s\n", st.Kernel)
	fmt.Printf("nodes       %d (%d hosts), %d LPs\n", b.G.N(), len(b.Hosts), st.LPs)
	fmt.Printf("flows       %d generated, %d completed\n", b.Flows, b.Sim.Mon.Completed())
	fmt.Printf("events      %d in %d rounds\n", st.Events, st.Rounds)
	fmt.Printf("sim time    %v reached\n", st.EndTime)
	fmt.Printf("wall time   %.3fs", float64(st.WallNS)/1e9)
	if st.VirtualT > 0 {
		fmt.Printf(" (virtual testbed time %.3fs)", float64(st.VirtualT)/1e9)
	}
	fmt.Println()
	fmt.Printf("P/S/M       %.1f%% / %.1f%% / %.1f%%\n",
		ratio(st.TotalP(), st), ratio(st.TotalS(), st), ratio(st.TotalM(), st))
	if st.Imbalance != nil {
		fmt.Printf("%s\n", st.Imbalance)
	}
	if b.Sim.Mon.Completed() > 0 {
		fmt.Printf("mean FCT    %.3f ms\n", b.Sim.Mon.MeanFCTms())
		fmt.Printf("mean RTT    %.3f ms\n", b.Sim.Mon.MeanRTTms())
		fmt.Printf("goodput     %.1f Mbps per flow\n", b.Sim.Mon.MeanGoodputMbps())
	}
	if cr := b.Sim.CollReport(b.Sim.Mon); cr != nil {
		if cr.CompletionNS >= 0 {
			fmt.Printf("collective  %s over %d hosts: %d/%d flows, completed in %.3f ms\n",
				cr.Pattern, cr.Participants, cr.Completed, cr.Flows, float64(cr.CompletionNS)/1e6)
		} else {
			fmt.Printf("collective  %s over %d hosts: %d/%d flows (incomplete at stop)\n",
				cr.Pattern, cr.Participants, cr.Completed, cr.Flows)
		}
	}
	fmt.Printf("retransmits %d, drops %d\n", b.Sim.Mon.TotalRetransmits(), b.Sim.Net.Drops())
	fmt.Printf("result hash %016x\n", b.Sim.Mon.Fingerprint())
	if *traceF != "" {
		f, err := os.Create(*traceF)
		if err != nil {
			fmt.Fprintf(os.Stderr, "unisim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if _, err := b.Sim.Net.Tracer.WriteTo(f); err != nil {
			fmt.Fprintf(os.Stderr, "unisim: writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace       %d records -> %s\n", b.Sim.Net.Tracer.Count(), *traceF)
	}
	if sc.Artifacts.Dir != "" {
		bundle := b.Bundle("unisim", st, sampler)
		files, err := bundle.Write(sc.Artifacts.Dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "unisim: artifacts: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("artifacts   %s (%v)\n", sc.Artifacts.Dir, files)
	}
}

func ratio(v int64, st *sim.RunStats) float64 {
	tot := st.TotalP() + st.TotalS() + st.TotalM()
	if tot == 0 {
		return 0
	}
	return 100 * float64(v) / float64(tot)
}
