// Command unidist runs a distributed simulation across real processes
// (or machines): one coordinator plus N simulation hosts connected over
// TCP, each building the same deterministic scenario and executing only
// its own nodes' events (see internal/dist).
//
// Start the coordinator, then one process per host:
//
//	unidist -role coord -hosts 2 -listen :9123
//	unidist -role host -id 0 -hosts 2 -addr 127.0.0.1:9123
//	unidist -role host -id 1 -hosts 2 -addr 127.0.0.1:9123
//
// All processes must use the same -scenario file (or the same -seed, -k,
// -stop and -load values) and the same -hosts count; the scenario is
// reconstructed deterministically in every process.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"unison"
	"unison/internal/dist"
	"unison/internal/netobs"
	"unison/internal/obs"
	"unison/internal/obs/live"
	"unison/internal/obs/obshttp"
	"unison/internal/sim"
	utrace "unison/internal/trace"
)

func main() {
	var (
		role    = flag.String("role", "", "coord | host")
		id      = flag.Int("id", 0, "host id (host role)")
		hosts   = flag.Int("hosts", 2, "number of simulation hosts")
		listen  = flag.String("listen", ":9123", "coordinator listen address")
		addr    = flag.String("addr", "127.0.0.1:9123", "coordinator address (host role)")
		scFile  = flag.String("scenario", "", "declarative scenario file (JSON, or TOML by extension); must be identical across all processes; other flags override it")
		k       = flag.Int("k", 4, "fat-tree arity")
		stopD   = flag.Duration("stop", 2_000_000, "simulated duration (ns when unitless)")
		load    = flag.Float64("load", 0.4, "offered load")
		seed    = flag.Uint64("seed", 42, "random seed")
		tmo     = flag.Duration("timeout", 30*time.Second, "per-message network deadline (0 disables)")
		dials   = flag.Int("dial-attempts", 8, "host dial retries for the coordinator startup race")
		trace   = flag.String("trace", "", "write a Perfetto trace of this endpoint's rounds to this file")
		artif   = flag.String("artifacts", "", "run-artifact bundle directory: pass to every process; hosts enable sampling/tracing, the coordinator writes the bundle")
		debugA  = flag.String("debug-addr", "", "serve /debug/vars and /debug/pprof on this address (e.g. :6060)")
		liveA   = flag.String("live", "", "coord: serve the merged live telemetry view (JSON + SSE for unimon) on this address; host: any non-empty value piggybacks the telemetry sideband on the round protocol")
		lingerD = flag.Duration("live-linger", live.DefaultLinger, "coord: after the run, wait up to this long for an attached watcher to read the final snapshot")

		ckptDir = flag.String("checkpoint", "", "host role: write per-host snapshots ckpt-r<round>-h<id>.uckpt into this directory")
		ckptN   = flag.Uint64("checkpoint-every", 100, "host role: snapshot cadence in window rounds")
		restore = flag.String("restore", "", "host role: resume from this host's snapshot file; every host must restore the same round")
	)
	flag.Parse()

	sc := defaultScenario()
	if *scFile != "" {
		var err error
		if sc, err = unison.LoadScenario(*scFile); err != nil {
			fatal(err)
		}
	}
	ov := &unison.ScenarioOverrides{}
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "seed":
			ov.Seed = seed
		case "k":
			ov.K = k
		case "stop":
			t := sim.Time(stopD.Nanoseconds())
			ov.Stop = &t
		case "load":
			ov.Load = load
		}
	})
	sc.Override(ov)
	// The distributed runtime owns the partitioning; the scenario's kernel
	// section only contributes defaults elsewhere and streaming is
	// impossible here (the pump needs runtime globals).
	if sc.Traffic != nil && sc.Traffic.Stream {
		fatal(fmt.Errorf("scenario: traffic.stream is not supported by the distributed runtime (it needs runtime global events)"))
	}

	if *debugA != "" {
		bound, err := obshttp.Serve(*debugA)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("debug http on %s (/debug/vars, /debug/pprof)\n", bound)
	}
	reg := obs.NewRegistry(0)
	reg.Publish("unison_dist")

	switch *role {
	case "coord":
		runCoord(*listen, *hosts, sc, *tmo, reg, *artif, *liveA, *lingerD)
	case "host":
		runHost(int32(*id), *addr, *hosts, sc, *tmo, *dials, reg, *artif != "",
			*ckptDir, *ckptN, *restore, *liveA != "")
	default:
		flag.Usage()
		os.Exit(2)
	}
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := reg.WritePerfetto(f); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d round records)\n", *trace, len(reg.Records()))
	}
}

// defaultScenario mirrors the historical unidist flag defaults: a k=4
// fat-tree under 40% gRPC load with arrivals over the first half of the
// run.
func defaultScenario() *unison.Scenario {
	sc := unison.DefaultScenario()
	sc.Traffic.Load = 0.4
	sc.Traffic.End = unison.ScenarioDuration(sc.Stop) / 2
	return sc
}

// build resolves the scenario every process reconstructs. Each process
// builds the full model deterministically; a host executes only its own
// nodes' events.
func build(sc *unison.Scenario) *unison.BuiltScenario {
	b, err := sc.Build()
	if err != nil {
		fatal(err)
	}
	if b.ManualFor == nil {
		fatal(fmt.Errorf("topology %q has no manual-partition recipe; the distributed runtime needs one", sc.Topology.Kind))
	}
	return b
}

func runCoord(listen string, hosts int, sc *unison.Scenario, tmo time.Duration, reg *obs.Registry, artifacts, liveAddr string, linger time.Duration) {
	b := build(sc)
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("coordinator listening on %s for %d hosts (%d flows, stop %v)\n",
		ln.Addr(), hosts, b.Sim.Mon.Flows(), sim.Time(sc.Stop))
	stats := &sim.RunStats{}
	cfg := dist.CoordConfig{
		Hosts: hosts, StopAt: sim.Time(sc.Stop), Flows: b.Sim.Mon.Flows(),
		Timeout: tmo, Observe: reg, Stats: stats,
	}
	if artifacts != "" {
		cfg.Net = &dist.NetData{}
	}
	// The live view merges what the hosts piggyback on their min messages:
	// per-rank round records (fed to the imbalance tracker and the state),
	// netobs row deltas (the queue heatmap), and rank liveness counters.
	tracker := obs.NewImbalanceTracker()
	var lstate *live.State
	var lsrv *live.Server
	if liveAddr != "" {
		meta := obs.RunMeta{Kernel: fmt.Sprintf("dist(%d)", hosts), Workers: hosts, LPs: b.G.N()}
		tracker.BeginRun(meta)
		lstate = live.NewState("unidist", sim.Time(sc.Stop))
		lstate.Ingest(obs.BusEvent{Kind: obs.EvBegin, Meta: meta})
		lstate.SetQueueInterval(netobs.DefaultInterval)
		lstate.SetImbalance(tracker)
		lsrv, err = live.NewServer(lstate, liveAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("live telemetry on http://%s/live\n", lsrv.Addr())
		cfg.OnSideband = func(h int, side *dist.Sideband) {
			for i := range side.Recs {
				tracker.OnRound(&side.Recs[i])
			}
			lstate.IngestRecords(side.Recs)
			lstate.IngestRows(side.Rows)
			lstate.MarkRank(h, side.Rounds, side.Events)
		}
	}
	mon, rounds, err := dist.RunCoordinator(ln, cfg)
	if err != nil {
		fatal(err)
	}
	// Imbalance diagnostics land in the merged stats before they are
	// serialized (run_stats.json) or served (the final live snapshot), so
	// both views agree field for field.
	tracker.Apply(stats, 0)
	fmt.Printf("simulation complete: %d rounds\n", rounds)
	fmt.Printf("merged stats     %s\n", stats)
	if stats.Imbalance != nil {
		fmt.Printf("%s\n", stats.Imbalance)
	}
	fmt.Printf("flows completed  %d/%d\n", mon.Completed(), mon.Flows())
	fmt.Printf("mean FCT         %.3f ms\n", mon.MeanFCTms())
	fmt.Printf("mean RTT         %.3f ms\n", mon.MeanRTTms())
	fmt.Printf("result hash      %016x\n", mon.Fingerprint())
	// The collective report is a pure function of (pattern, base, monitor),
	// so recomputing it over the merged monitor yields the byte-identical
	// section a single-process run writes.
	collReport := b.Sim.CollReport(mon)
	if collReport != nil {
		if collReport.CompletionNS >= 0 {
			fmt.Printf("collective       %s: %d/%d flows, completed in %.3f ms\n",
				collReport.Pattern, collReport.Completed, collReport.Flows, float64(collReport.CompletionNS)/1e6)
		} else {
			fmt.Printf("collective       %s: %d/%d flows (incomplete at stop)\n",
				collReport.Pattern, collReport.Completed, collReport.Flows)
		}
	}
	if artifacts != "" {
		bw := sc.Topology.BwGbps
		if bw <= 0 {
			bw = 10
		}
		bundle := &netobs.Bundle{
			Meta: netobs.Meta{
				Tool: "unidist", Kernel: fmt.Sprintf("dist(%d)", hosts),
				Topology: sc.Topology.Kind,
				Seed:     sc.Seed, Workers: hosts, StopNS: int64(sc.Stop),
				Flows: mon.Flows(),
			},
			Stats:        stats,
			Mon:          mon,
			RefBandwidth: int64(bw * 1e9),
			Rows:         cfg.Net.Rows,
			Interval:     netobs.DefaultInterval,
			Trace:        cfg.Net.Trace,
			KernelMeta:   reg.Meta(),
			KernelRecs:   reg.Records(),
		}
		if collReport != nil {
			bundle.Coll = collReport
		}
		files, err := bundle.Write(artifacts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("artifact bundle  %s (%v)\n", artifacts, files)
	}
	if lsrv != nil {
		// Done is only published once the bundle is on disk, so a watcher
		// reacting to the final frame can immediately open run_stats.json.
		lstate.Finalize(stats)
		lsrv.Linger(linger)
		_ = lsrv.Close()
	}
}

func runHost(id int32, addr string, hosts int, sc *unison.Scenario, tmo time.Duration, dials int, reg *obs.Registry, observe bool, ckptDir string, ckptEvery uint64, restore string, liveSide bool) {
	b := build(sc)
	if observe {
		// The coordinator assembles the bundle; this host only collects its
		// own devices' records and ships them at gather.
		b.Sim.Net.Tracer = utrace.NewCollector(b.G.N(), 0)
		b.Sim.Net.AttachSampler(netobs.NewSampler(netobs.SamplerConfig{}))
	}
	m := b.Sim.Model()
	cfg := dist.HostConfig{
		ID: id, Addr: addr, HostOf: b.ManualFor(hosts), StopAt: sim.Time(sc.Stop),
		Timeout: tmo, DialAttempts: dials, Observe: reg, Live: liveSide,
	}
	if ckptDir != "" || restore != "" {
		// Sim.CkptTarget covers every wired layer (net, tcp, the collective
		// engine, flowmon, tracer/sampler) and hashes the scenario config,
		// so mismatched flags across processes fail fast on restore.
		cfg.Ckpt = b.Sim.CkptTarget()
		cfg.RestoreFrom = restore
	}
	if ckptDir != "" {
		if err := os.MkdirAll(ckptDir, 0o755); err != nil {
			fatal(err)
		}
		cfg.CheckpointDir, cfg.CheckpointEvery = ckptDir, ckptEvery
	}
	st, err := dist.RunHost(cfg, m, b.Sim.Net, b.Sim.Mon)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("host %d: %s\n", id, st)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "unidist: %v\n", err)
	os.Exit(1)
}
