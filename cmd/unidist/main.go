// Command unidist runs a distributed simulation across real processes
// (or machines): one coordinator plus N simulation hosts connected over
// TCP, each building the same deterministic scenario and executing only
// its own nodes' events (see internal/dist).
//
// Start the coordinator, then one process per host:
//
//	unidist -role coord -hosts 2 -listen :9123
//	unidist -role host -id 0 -hosts 2 -addr 127.0.0.1:9123
//	unidist -role host -id 1 -hosts 2 -addr 127.0.0.1:9123
//
// All processes must use the same -seed, -k, -stop and -hosts values; the
// scenario is reconstructed deterministically in every process.
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"net"
	"os"
	"time"

	"unison"
	"unison/internal/ckpt"
	"unison/internal/dist"
	"unison/internal/flowmon"
	"unison/internal/netdev"
	"unison/internal/netobs"
	"unison/internal/obs"
	"unison/internal/obs/obshttp"
	"unison/internal/pdes"
	"unison/internal/routing"
	"unison/internal/sim"
	"unison/internal/tcp"
	"unison/internal/topology"
	utrace "unison/internal/trace"
	"unison/internal/traffic"
)

func main() {
	var (
		role   = flag.String("role", "", "coord | host")
		id     = flag.Int("id", 0, "host id (host role)")
		hosts  = flag.Int("hosts", 2, "number of simulation hosts")
		listen = flag.String("listen", ":9123", "coordinator listen address")
		addr   = flag.String("addr", "127.0.0.1:9123", "coordinator address (host role)")
		k      = flag.Int("k", 4, "fat-tree arity")
		stopD  = flag.Duration("stop", 2_000_000, "simulated duration (ns when unitless)")
		load   = flag.Float64("load", 0.4, "offered load")
		seed   = flag.Uint64("seed", 42, "random seed")
		tmo    = flag.Duration("timeout", 30*time.Second, "per-message network deadline (0 disables)")
		dials  = flag.Int("dial-attempts", 8, "host dial retries for the coordinator startup race")
		trace  = flag.String("trace", "", "write a Perfetto trace of this endpoint's rounds to this file")
		artif  = flag.String("artifacts", "", "run-artifact bundle directory: pass to every process; hosts enable sampling/tracing, the coordinator writes the bundle")
		debugA = flag.String("debug-addr", "", "serve /debug/vars and /debug/pprof on this address (e.g. :6060)")

		ckptDir = flag.String("checkpoint", "", "host role: write per-host snapshots ckpt-r<round>-h<id>.uckpt into this directory")
		ckptN   = flag.Uint64("checkpoint-every", 100, "host role: snapshot cadence in window rounds")
		restore = flag.String("restore", "", "host role: resume from this host's snapshot file; every host must restore the same round")
	)
	flag.Parse()
	stop := sim.Time(stopD.Nanoseconds())

	if *debugA != "" {
		bound, err := obshttp.Serve(*debugA)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("debug http on %s (/debug/vars, /debug/pprof)\n", bound)
	}
	reg := obs.NewRegistry(0)
	reg.Publish("unison_dist")

	switch *role {
	case "coord":
		runCoord(*listen, *hosts, *k, stop, *load, *seed, *tmo, reg, *artif)
	case "host":
		runHost(int32(*id), *addr, *hosts, *k, stop, *load, *seed, *tmo, *dials, reg, *artif != "",
			*ckptDir, *ckptN, *restore)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := reg.WritePerfetto(f); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d round records)\n", *trace, len(reg.Records()))
	}
}

// buildScenario reconstructs the deterministic scenario each process runs.
func buildScenario(k int, stop sim.Time, load float64, seed uint64) (*sim.Model, *netdev.Network, *tcp.Stack, *flowmon.Monitor, *topology.FatTree, int) {
	ft := topology.BuildFatTree(topology.FatTreeK(k, 10*unison.Gbps, 3*sim.Microsecond))
	flows := traffic.Generate(traffic.Config{
		Seed: seed, Hosts: ft.Hosts(), Sizes: traffic.GRPCCDF(), Load: load,
		BisectionBps: ft.BisectionBandwidth(), Start: 0, End: stop / 2,
	})
	mon := flowmon.NewMonitor(len(flows))
	network := netdev.New(ft.Graph, routing.NewECMP(ft.Graph, routing.Hops, seed), netdev.DefaultConfig(seed))
	stack := tcp.NewStack(network, tcp.DefaultConfig(), mon)
	s := sim.NewSetup()
	stack.Attach(s, flows)
	s.Global(stop, func(ctx *sim.Ctx) { ctx.Stop() })
	m := &sim.Model{Nodes: ft.N(), Links: ft.LinkInfos, Init: s.Events(), StopAt: stop}
	return m, network, stack, mon, ft, len(flows)
}

// hostTarget assembles a host's checkpoint target. The config hash covers
// every parameter the snapshot assumes was rebuilt identically, so a
// restore with mismatched flags fails fast across processes too.
func hostTarget(network *netdev.Network, stack *tcp.Stack, mon *flowmon.Monitor, hosts, k int, stop sim.Time, load float64, seed uint64) *ckpt.Target {
	h := fnv.New64a()
	fmt.Fprintf(h, "unidist|hosts=%d|k=%d|stop=%d|load=%g|seed=%d", hosts, k, stop, load, seed)
	t := &ckpt.Target{
		ConfigHash: h.Sum64(),
		Layers:     []ckpt.Checkpointer{network, stack, mon},
		Decoders:   []ckpt.EventDecoder{network, stack},
	}
	if network.Tracer != nil {
		t.Layers = append(t.Layers, network.Tracer)
	}
	if sam := network.Sampler(); sam != nil {
		t.Layers = append(t.Layers, sam)
	}
	return t
}

func runCoord(listen string, hosts, k int, stop sim.Time, load float64, seed uint64, tmo time.Duration, reg *obs.Registry, artifacts string) {
	_, _, _, _, _, flows := buildScenario(k, stop, load, seed)
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("coordinator listening on %s for %d hosts (%d flows, stop %v)\n",
		ln.Addr(), hosts, flows, stop)
	cfg := dist.CoordConfig{
		Hosts: hosts, StopAt: stop, Flows: flows, Timeout: tmo, Observe: reg,
	}
	if artifacts != "" {
		cfg.Net = &dist.NetData{}
	}
	mon, rounds, err := dist.RunCoordinator(ln, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("simulation complete: %d rounds\n", rounds)
	fmt.Printf("flows completed  %d/%d\n", mon.Completed(), mon.Flows())
	fmt.Printf("mean FCT         %.3f ms\n", mon.MeanFCTms())
	fmt.Printf("mean RTT         %.3f ms\n", mon.MeanRTTms())
	fmt.Printf("result hash      %016x\n", mon.Fingerprint())
	if artifacts != "" {
		b := &netobs.Bundle{
			Meta: netobs.Meta{
				Tool: "unidist", Kernel: fmt.Sprintf("dist(%d)", hosts),
				Topology: fmt.Sprintf("fat-tree k=%d", k),
				Seed:     seed, Workers: hosts, StopNS: int64(stop),
				Flows: mon.Flows(),
			},
			Mon:          mon,
			RefBandwidth: 10 * unison.Gbps,
			Rows:         cfg.Net.Rows,
			Interval:     netobs.DefaultInterval,
			Trace:        cfg.Net.Trace,
			KernelMeta:   reg.Meta(),
			KernelRecs:   reg.Records(),
		}
		files, err := b.Write(artifacts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("artifact bundle  %s (%v)\n", artifacts, files)
	}
}

func runHost(id int32, addr string, hosts, k int, stop sim.Time, load float64, seed uint64, tmo time.Duration, dials int, reg *obs.Registry, observe bool, ckptDir string, ckptEvery uint64, restore string) {
	m, network, stack, mon, ft, _ := buildScenario(k, stop, load, seed)
	if observe {
		// The coordinator assembles the bundle; this host only collects its
		// own devices' records and ships them at gather.
		network.Tracer = utrace.NewCollector(ft.N(), 0)
		network.AttachSampler(netobs.NewSampler(netobs.SamplerConfig{}))
	}
	hostOf := pdes.FatTreeManual(ft, hosts)
	cfg := dist.HostConfig{
		ID: id, Addr: addr, HostOf: hostOf, StopAt: stop,
		Timeout: tmo, DialAttempts: dials, Observe: reg,
	}
	if ckptDir != "" || restore != "" {
		cfg.Ckpt = hostTarget(network, stack, mon, hosts, k, stop, load, seed)
		cfg.RestoreFrom = restore
	}
	if ckptDir != "" {
		if err := os.MkdirAll(ckptDir, 0o755); err != nil {
			fatal(err)
		}
		cfg.CheckpointDir, cfg.CheckpointEvery = ckptDir, ckptEvery
	}
	st, err := dist.RunHost(cfg, m, network, mon)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("host %d: %s\n", id, st)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "unidist: %v\n", err)
	os.Exit(1)
}
