// Command unitopo inspects topologies and the partitions Unison's
// Algorithm 1 produces on them: LP counts, sizes, the lookahead, and how
// a manual static partition compares.
//
// Usage:
//
//	unitopo -topo fattree -k 8
//	unitopo -topo torus -rows 12 -cols 12 -sizes
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"unison/internal/core"
	"unison/internal/pdes"
	"unison/internal/sim"
	"unison/internal/topology"
)

func main() {
	var (
		topo   = flag.String("topo", "fattree", "topology: fattree | torus | bcube | spineleaf | dumbbell | geant | chinanet")
		k      = flag.Int("k", 4, "fat-tree arity")
		rows   = flag.Int("rows", 6, "torus rows")
		cols   = flag.Int("cols", 6, "torus cols")
		n      = flag.Int("n", 4, "bcube ports / dumbbell pairs / spine-leaf hosts per leaf")
		bwGbps = flag.Float64("bw", 10, "link bandwidth in Gbit/s")
		delay  = flag.Duration("delay", 3_000, "link delay (ns when unitless)")
		sizes  = flag.Bool("sizes", false, "print the LP size distribution")
	)
	flag.Parse()

	g, manual := build(*topo, *k, *rows, *cols, *n, int64(*bwGbps*1e9), sim.Time(delay.Nanoseconds()))
	hosts, switches := 0, 0
	for _, node := range g.Nodes {
		if node.Kind == topology.Host {
			hosts++
		} else {
			switches++
		}
	}
	fmt.Printf("topology     %s: %d nodes (%d hosts, %d switches), %d links\n",
		*topo, g.N(), hosts, switches, len(g.Links))
	fmt.Printf("bisection    %.1f Gbps\n", float64(g.BisectionBandwidth())/1e9)

	p := core.FineGrained(g.N(), g.LinkInfos())
	fmt.Printf("\nUnison fine-grained partition (Algorithm 1):\n")
	fmt.Printf("  LPs        %d\n", p.Count)
	fmt.Printf("  bound      %v (median link delay)\n", p.Bound)
	fmt.Printf("  lookahead  %v\n", p.Lookahead)
	cut := 0
	for _, l := range g.LinkInfos() {
		if l.Up && p.LPOf[l.A] != p.LPOf[l.B] {
			cut++
		}
	}
	fmt.Printf("  cut links  %d of %d\n", cut, len(g.Links))
	if *sizes {
		printSizes(p.Sizes())
	}

	if manual != nil {
		mp := core.Manual(manual, g.LinkInfos())
		fmt.Printf("\nstatic manual partition (baseline recipe):\n")
		fmt.Printf("  LPs        %d\n", mp.Count)
		fmt.Printf("  lookahead  %v\n", mp.Lookahead)
		if *sizes {
			printSizes(mp.Sizes())
		}
	}
}

func printSizes(sz []int) {
	sort.Ints(sz)
	hist := map[int]int{}
	for _, s := range sz {
		hist[s]++
	}
	var keys []int
	for s := range hist {
		keys = append(keys, s)
	}
	sort.Ints(keys)
	fmt.Printf("  sizes      ")
	for _, s := range keys {
		fmt.Printf("%d nodes ×%d  ", s, hist[s])
	}
	fmt.Println()
}

func build(name string, k, rows, cols, n int, bw int64, delay sim.Time) (*topology.Graph, []int32) {
	switch strings.ToLower(name) {
	case "fattree":
		ft := topology.BuildFatTree(topology.FatTreeK(k, bw, delay))
		return ft.Graph, pdes.FatTreeManual(ft, k)
	case "torus":
		tr := topology.BuildTorus2D(rows, cols, bw, delay)
		return tr.Graph, pdes.TorusManual(tr, 4)
	case "bcube":
		b := topology.BuildBCube(n, 1, bw, delay)
		return b.Graph, pdes.BCubeManual(b, len(b.BCube0))
	case "spineleaf":
		s := topology.BuildSpineLeaf(2, 4, n, bw, delay)
		return s.Graph, pdes.SpineLeafManual(s, 4)
	case "dumbbell":
		d := topology.BuildDumbbell(n, bw, bw, delay, 5*delay)
		return d.Graph, pdes.DumbbellManual(d)
	case "geant":
		return topology.Geant().Graph, nil
	case "chinanet":
		return topology.ChinaNet().Graph, nil
	default:
		fmt.Fprintf(os.Stderr, "unitopo: unknown topology %q\n", name)
		os.Exit(2)
		return nil, nil
	}
}
