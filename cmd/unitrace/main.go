// Command unitrace inspects packet traces written by unisim -trace:
// it prints per-kind and per-flow summaries, the full ascii dump, or
// converts the trace to pcapng for Wireshark. The diff subcommand
// compares two run-artifact bundles metric by metric.
//
//	unisim -topo fattree -k 4 -trace /tmp/run.utr
//	unitrace /tmp/run.utr
//	unitrace -dump /tmp/run.utr | head
//	unitrace -pcap /tmp/run.pcapng /tmp/run.utr
//	unitrace diff -threshold 5 out/baseline out/candidate
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"unison/internal/netobs"
	"unison/internal/packet"
	"unison/internal/trace"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		runDiff(os.Args[2:])
		return
	}
	dump := flag.Bool("dump", false, "print every record (ascii tracing)")
	top := flag.Int("top", 5, "number of flows in the per-flow summary")
	pcap := flag.String("pcap", "", "convert the trace to pcapng at this path (open in Wireshark)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: unitrace [-dump] [-top N] [-pcap out.pcapng] <file.utr>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	recs, err := trace.ReadAll(f)
	if err != nil {
		fatal(err)
	}
	if *pcap != "" {
		// A standalone .utr carries no flow table, so endpoint addresses
		// synthesize as zeros; the flow id is still recoverable from the
		// TCP source port and each frame's comment names the event kind.
		out, err := os.Create(*pcap)
		if err != nil {
			fatal(err)
		}
		if err := netobs.WritePcapng(out, recs, nil); err != nil {
			out.Close()
			fatal(err)
		}
		if err := out.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d frames)\n", *pcap, len(recs))
		return
	}
	if *dump {
		if err := trace.Dump(os.Stdout, recs); err != nil {
			fatal(err)
		}
		return
	}
	if len(recs) == 0 {
		fmt.Println("empty trace")
		return
	}
	fmt.Printf("%d records over %v .. %v\n", len(recs), recs[0].Time, recs[len(recs)-1].Time)
	kinds := map[trace.Kind]int{}
	type flowAgg struct {
		delivers int
		bytes    int64
		drops    int
	}
	flows := map[packet.FlowID]*flowAgg{}
	for _, r := range recs {
		kinds[r.Kind]++
		fa := flows[r.Flow]
		if fa == nil {
			fa = &flowAgg{}
			flows[r.Flow] = fa
		}
		switch r.Kind {
		case trace.Deliver:
			fa.delivers++
			fa.bytes += int64(r.Size)
		case trace.Drop:
			fa.drops++
		}
	}
	fmt.Println("\nby kind:")
	for k := trace.Kind(0); k <= trace.Deliver; k++ {
		if kinds[k] > 0 {
			fmt.Printf("  %-5s %d\n", k, kinds[k])
		}
	}
	type fr struct {
		id packet.FlowID
		a  *flowAgg
	}
	var ranked []fr
	for id, a := range flows {
		ranked = append(ranked, fr{id, a})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].a.bytes != ranked[j].a.bytes {
			return ranked[i].a.bytes > ranked[j].a.bytes
		}
		return ranked[i].id < ranked[j].id
	})
	fmt.Printf("\ntop %d flows by delivered bytes:\n", *top)
	for i, r := range ranked {
		if i >= *top {
			break
		}
		fmt.Printf("  flow %-6d %8d B delivered in %d packets, %d drops\n",
			r.id, r.a.bytes, r.a.delivers, r.a.drops)
	}
}

// runDiff is the `unitrace diff A_DIR B_DIR` subcommand: it compares two
// run-artifact bundles (run_stats.json, flow_report.json, series.csv) and
// exits nonzero when a gated metric moved more than -threshold percent —
// the regression check CI and bisection scripts build on.
func runDiff(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	threshold := fs.Float64("threshold", 5, "max allowed |relative delta| in percent on gated metrics")
	asJSON := fs.Bool("json", false, "emit the comparison as JSON instead of a table")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: unitrace diff [-threshold PCT] [-json] A_DIR B_DIR")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if fs.NArg() != 2 {
		fs.Usage()
		os.Exit(2)
	}
	d, err := netobs.DiffBundles(fs.Arg(0), fs.Arg(1))
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		//unison:json-ok deltas come from parsed (hence finite) artifacts and relPct guards zero denominators
		if err := enc.Encode(d); err != nil {
			fatal(err)
		}
	} else {
		d.Render(os.Stdout)
	}
	if breaches := d.Breaches(*threshold); len(breaches) > 0 {
		for _, m := range breaches {
			fmt.Fprintf(os.Stderr, "unitrace: diff: %s moved %+.2f%% (threshold %.2f%%)\n",
				m.Name, m.RelPct, *threshold)
		}
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "unitrace: %v\n", err)
	os.Exit(1)
}
