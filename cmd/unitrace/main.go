// Command unitrace inspects packet traces written by unisim -trace:
// it prints per-kind and per-flow summaries, the full ascii dump, or
// converts the trace to pcapng for Wireshark.
//
//	unisim -topo fattree -k 4 -trace /tmp/run.utr
//	unitrace /tmp/run.utr
//	unitrace -dump /tmp/run.utr | head
//	unitrace -pcap /tmp/run.pcapng /tmp/run.utr
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"unison/internal/netobs"
	"unison/internal/packet"
	"unison/internal/trace"
)

func main() {
	dump := flag.Bool("dump", false, "print every record (ascii tracing)")
	top := flag.Int("top", 5, "number of flows in the per-flow summary")
	pcap := flag.String("pcap", "", "convert the trace to pcapng at this path (open in Wireshark)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: unitrace [-dump] [-top N] [-pcap out.pcapng] <file.utr>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	recs, err := trace.ReadAll(f)
	if err != nil {
		fatal(err)
	}
	if *pcap != "" {
		// A standalone .utr carries no flow table, so endpoint addresses
		// synthesize as zeros; the flow id is still recoverable from the
		// TCP source port and each frame's comment names the event kind.
		out, err := os.Create(*pcap)
		if err != nil {
			fatal(err)
		}
		if err := netobs.WritePcapng(out, recs, nil); err != nil {
			out.Close()
			fatal(err)
		}
		if err := out.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d frames)\n", *pcap, len(recs))
		return
	}
	if *dump {
		if err := trace.Dump(os.Stdout, recs); err != nil {
			fatal(err)
		}
		return
	}
	if len(recs) == 0 {
		fmt.Println("empty trace")
		return
	}
	fmt.Printf("%d records over %v .. %v\n", len(recs), recs[0].Time, recs[len(recs)-1].Time)
	kinds := map[trace.Kind]int{}
	type flowAgg struct {
		delivers int
		bytes    int64
		drops    int
	}
	flows := map[packet.FlowID]*flowAgg{}
	for _, r := range recs {
		kinds[r.Kind]++
		fa := flows[r.Flow]
		if fa == nil {
			fa = &flowAgg{}
			flows[r.Flow] = fa
		}
		switch r.Kind {
		case trace.Deliver:
			fa.delivers++
			fa.bytes += int64(r.Size)
		case trace.Drop:
			fa.drops++
		}
	}
	fmt.Println("\nby kind:")
	for k := trace.Kind(0); k <= trace.Deliver; k++ {
		if kinds[k] > 0 {
			fmt.Printf("  %-5s %d\n", k, kinds[k])
		}
	}
	type fr struct {
		id packet.FlowID
		a  *flowAgg
	}
	var ranked []fr
	for id, a := range flows {
		ranked = append(ranked, fr{id, a})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].a.bytes != ranked[j].a.bytes {
			return ranked[i].a.bytes > ranked[j].a.bytes
		}
		return ranked[i].id < ranked[j].id
	})
	fmt.Printf("\ntop %d flows by delivered bytes:\n", *top)
	for i, r := range ranked {
		if i >= *top {
			break
		}
		fmt.Printf("  flow %-6d %8d B delivered in %d packets, %d drops\n",
			r.id, r.a.bytes, r.a.delivers, r.a.drops)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "unitrace: %v\n", err)
	os.Exit(1)
}
