package main

// Scale benchmark: memory-per-node and memory-per-flow accounting for
// k-ary fat-trees under the streaming workload path, written as
// BENCH_scale.json. Complements the hot-path report: BENCH_hotpath.json
// answers "how fast", this file answers "how big" — the two axes of the
// scale-out story (large topologies on a single box).
//
// The report embeds the pre-overhaul k=8 measurements (per-pointer conn
// maps, materialized flow slices, per-device heap allocations) taken on
// the same scenario before the struct-of-arrays/arena layouts landed, so
// every run carries its own before/after comparison. The -scale-gate
// flag enforces the headline acceptance figure: live bytes/flow at k=8
// must stay at least 4x below that baseline.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"unison"
	"unison/internal/core"
	"unison/internal/sim"
	"unison/internal/vtime"
)

// preBaseline is the pre-overhaul measurement at k=8 on exactly this
// file's scenario (1 Gbps links, 3 us delay, GRPC sizes at load 0.3,
// seed 42, stop 40 ms, 5896 flows, Unison 4 threads): per-host
// map[FlowID]*conn stores retaining every record to the end of the run,
// []FlowSpec materialized up front, per-device pointer structs. Its
// bytes/flow uses the same definition as scaleRun.BytesPerFlow — live
// heap growth across the run minus queue-ring growth (queue rings are
// per-device working memory that exists at any flow count; both layouts
// retain ~1.2 MB of them on this scenario) — so the gate compares
// flow-attributable state only. Recorded here so the gate and the
// report survive the deletion of that code path. The pre-overhaul run's
// monitor fingerprint was 14758583956524210324, which the streaming
// runs must (and do) reproduce.
var preBaseline = scaleBaseline{
	K:            8,
	BytesPerNode: 15680,
	BytesPerFlow: 634,
	AllocPerFlow: 3023,
	Note: "pre-overhaul layout: pointer conn maps retained per flow, materialized " +
		"flow slice, per-device allocations (measured on the same k=8 scenario; " +
		"bytes/flow excludes queue-ring growth on both sides)",
}

type scaleBaseline struct {
	K            int    `json:"k"`
	BytesPerNode int64  `json:"bytes_per_node"`
	BytesPerFlow int64  `json:"bytes_per_flow"`
	AllocPerFlow int64  `json:"alloc_bytes_per_flow"`
	Note         string `json:"note"`
}

// scaleRun is one live-kernel run at one k: topology sizes, run outcome,
// and the memory split between static state (bytes/node) and flow state
// (bytes/flow), from runtime.MemStats deltas plus component self-reports.
type scaleRun struct {
	K           int     `json:"k"`
	Kernel      string  `json:"kernel"`
	Nodes       int     `json:"nodes"`
	Links       int     `json:"links"`
	Flows       int     `json:"flows"`
	Events      uint64  `json:"events"`
	WallMs      float64 `json:"wall_ms"`
	Completed   int     `json:"completed"`
	Fingerprint uint64  `json:"fingerprint"`

	// Heap accounting: live bytes after double-GC at three points.
	// Queue rings are per-device working memory (they grow to each
	// device's peak occupancy regardless of how many flows pass), so
	// their growth is split out of the per-flow figure.
	BuildHeapBytes   int64 `json:"build_heap_bytes"`     // after topology+net+stack
	RunHeapBytes     int64 `json:"run_heap_bytes"`       // after the run completes
	QueueGrowthBytes int64 `json:"queue_growth_bytes"`   // ring growth during the run
	BytesPerNode     int64 `json:"bytes_per_node"`       // build delta / nodes
	BytesPerFlow     int64 `json:"bytes_per_flow"`       // (run delta - queue growth) / flows
	AllocPerFlow     int64 `json:"alloc_bytes_per_flow"` // cumulative alloc / flows

	// Component self-reports (what the accounted bytes are made of).
	StackMem unison.StackMemStats `json:"stack_mem"`
	NetMem   unison.NetMemStats   `json:"net_mem"`
	MonBytes int64                `json:"monitor_bytes"`
}

// sweepRow is one cell of the k x cores virtual-testbed speedup table
// (the unison-testbed evaluation shape: rows are topologies, columns are
// core counts, cells are speedup over the sequential baseline).
type sweepRow struct {
	K            int     `json:"k"`
	Cores        int     `json:"cores"`
	Events       uint64  `json:"events"`
	SeqVirtualMs float64 `json:"sequential_virtual_ms"`
	UniVirtualMs float64 `json:"unison_virtual_ms"`
	Speedup      float64 `json:"speedup"`
}

type scaleReport struct {
	Note       string        `json:"note"`
	Go         string        `json:"go"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Generated  string        `json:"generated"`
	Baseline   scaleBaseline `json:"baseline_pre_overhaul"`
	Runs       []scaleRun    `json:"runs"`
	Sweep      []sweepRow    `json:"sweep"`
}

// scrub replaces non-finite floats with 0 so the report encode cannot
// fail at run end (a zero-duration sequential run would make Speedup Inf).
func (r *scaleReport) scrub() {
	for i := range r.Runs {
		r.Runs[i].WallMs = finite(r.Runs[i].WallMs)
	}
	for i := range r.Sweep {
		s := &r.Sweep[i]
		s.SeqVirtualMs = finite(s.SeqVirtualMs)
		s.UniVirtualMs = finite(s.UniVirtualMs)
		s.Speedup = finite(s.Speedup)
	}
}

const (
	scaleStop = 40 * sim.Millisecond
	scaleLoad = 0.3
	scaleSeed = 42
)

// scaleScenario assembles the k-ary streaming scenario used by every
// scale measurement: 1 Gbps links, GRPC flow sizes at load 0.3, flows
// pulled on demand (nothing materialized).
func scaleScenario(k int) (*unison.Sim, int) {
	sc := unison.DefaultScenario()
	sc.Seed = scaleSeed
	sc.Stop = unison.ScenarioDuration(scaleStop)
	sc.Topology.K = k
	sc.Topology.BwGbps = 1
	sc.Traffic.Load = scaleLoad
	sc.Traffic.End = unison.ScenarioDuration(scaleStop / 2)
	sc.Traffic.Stream = true
	b, err := sc.Build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "unibench: scale: %v\n", err)
		os.Exit(1)
	}
	return b.Sim, b.Flows
}

func liveHeap() int64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapAlloc)
}

// heapSlack is the live-heap jitter budget: GC metadata, timer wheels and
// runtime bookkeeping can move a double-GC heap reading by tens of KiB in
// either direction between two readings of identical state.
const heapSlack = 256 << 10

// flowHeap is the raw flow-attributable heap growth of one pass.
func flowHeap(r *scaleRun) int64 {
	return r.RunHeapBytes - r.BuildHeapBytes - r.QueueGrowthBytes
}

// measureScale measures the k-ary scenario twice and keeps the pass with
// the smaller flow-attributable heap growth: GC timing can only inflate a
// live-heap reading, so the min across passes is the cleaner measurement.
// Residual negative deltas within heapSlack are clamped to zero (they are
// jitter, and a negative bytes/flow figure is nonsense); a delta negative
// beyond the slack means the accounting itself broke — most likely the
// queue-growth split over-subtracting — and fails the run loudly instead
// of publishing a bogus number.
func measureScale(k, threads int) (scaleRun, error) {
	r, err := measureScaleOnce(k, threads)
	if err != nil {
		return scaleRun{}, err
	}
	r2, err := measureScaleOnce(k, threads)
	if err != nil {
		return scaleRun{}, err
	}
	if r2.Fingerprint != r.Fingerprint {
		return scaleRun{}, fmt.Errorf("k=%d: measurement passes diverged (fingerprint %x vs %x)", k, r.Fingerprint, r2.Fingerprint)
	}
	if flowHeap(&r2) < flowHeap(&r) {
		r = r2
	}
	raw := flowHeap(&r)
	if raw < -heapSlack {
		return scaleRun{}, fmt.Errorf("k=%d: flow heap delta %d B is negative beyond the %d B GC jitter budget — the queue-growth split is over-subtracting", k, raw, heapSlack)
	}
	if raw < 0 {
		raw = 0
	}
	r.BytesPerFlow = raw / int64(r.Flows)
	if r.BuildHeapBytes < 0 {
		r.BuildHeapBytes = 0
	}
	r.BytesPerNode = r.BuildHeapBytes / int64(r.Nodes)
	return r, nil
}

// measureScaleOnce runs the k-ary scenario once under Unison(threads) and
// accounts its memory. The scenario stays reachable across every heap
// reading (KeepAlive), so the GC cannot shrink what we are measuring.
func measureScaleOnce(k, threads int) (scaleRun, error) {
	h0 := liveHeap()
	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)

	sc, count := scaleScenario(k)
	m := sc.Model()
	hBuild := liveHeap()
	queueAtBuild := sc.Net.Mem().QueueBytes

	start := time.Now()
	st, err := core.New(core.Config{Threads: threads}).Run(m)
	if err != nil {
		return scaleRun{}, fmt.Errorf("k=%d: %w", k, err)
	}
	wall := time.Since(start)
	hRun := liveHeap()
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)

	nodes := sc.G.N()
	netMem := sc.Net.Mem()
	queueGrowth := netMem.QueueBytes - queueAtBuild
	r := scaleRun{
		K:           k,
		Kernel:      st.Kernel,
		Nodes:       nodes,
		Links:       len(sc.G.Links),
		Flows:       count,
		Events:      st.Events,
		WallMs:      float64(wall.Nanoseconds()) / 1e6,
		Completed:   sc.Mon.Completed(),
		Fingerprint: sc.Mon.Fingerprint(),

		BuildHeapBytes:   hBuild - h0,
		RunHeapBytes:     hRun - h0,
		QueueGrowthBytes: queueGrowth,
		BytesPerNode:     (hBuild - h0) / int64(nodes),
		BytesPerFlow:     (hRun - hBuild - queueGrowth) / int64(count),
		AllocPerFlow:     int64(ms1.TotalAlloc-ms0.TotalAlloc) / int64(count),

		StackMem: sc.Stack.Mem(),
		NetMem:   netMem,
		MonBytes: sc.Mon.MemBytes(),
	}
	runtime.KeepAlive(sc)
	runtime.KeepAlive(m)
	return r, nil
}

// measureSweep fills the k x cores virtual-testbed table: one sequential
// baseline per k, then Unison at each core count, speedup in virtual
// time (deterministic, machine-independent).
func measureSweep(ks, cores []int) ([]sweepRow, error) {
	var rows []sweepRow
	for _, k := range ks {
		sc, _ := scaleScenario(k)
		seq, err := vtime.Run(sc.Model(), vtime.Config{Algo: vtime.Sequential})
		if err != nil {
			return nil, fmt.Errorf("sweep k=%d sequential: %w", k, err)
		}
		for _, c := range cores {
			scU, _ := scaleScenario(k)
			uni, err := vtime.Run(scU.Model(), vtime.Config{Algo: vtime.Unison, Cores: c})
			if err != nil {
				return nil, fmt.Errorf("sweep k=%d cores=%d: %w", k, c, err)
			}
			rows = append(rows, sweepRow{
				K:            k,
				Cores:        c,
				Events:       uni.Events,
				SeqVirtualMs: float64(seq.VirtualT) / 1e6,
				UniVirtualMs: float64(uni.VirtualT) / 1e6,
				Speedup:      vtime.Speedup(seq, uni),
			})
		}
	}
	return rows, nil
}

// runScale executes the scale suite (live runs for each k, then the
// virtual k x cores sweep), writes the report, and enforces the
// bytes/flow gate when asked.
func runScale(out string, maxK, threads int, gate bool) error {
	ks := []int{8}
	if maxK >= 16 {
		ks = append(ks, 16)
	}
	rep := scaleReport{
		Note: "Fat-tree scale benchmark: streaming workload, SoA device state, arena conn store. " +
			"bytes_per_node = static state / nodes; bytes_per_flow = live flow state / flows. " +
			"Sweep is the virtual-testbed k x cores speedup table.",
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Baseline:   preBaseline,
	}
	for _, k := range ks {
		r, err := measureScale(k, threads)
		if err != nil {
			return err
		}
		rep.Runs = append(rep.Runs, r)
		fmt.Printf("scale k=%-2d  %5d nodes %6d flows %9d events  %7.0fms  %5d B/node  %5d B/flow  %6d allocB/flow  live conns peak %d\n",
			r.K, r.Nodes, r.Flows, r.Events, r.WallMs, r.BytesPerNode, r.BytesPerFlow, r.AllocPerFlow, r.StackMem.PeakConns)
	}
	sweep, err := measureSweep(ks, []int{8, 16})
	if err != nil {
		return err
	}
	rep.Sweep = sweep
	for _, s := range sweep {
		fmt.Printf("sweep k=%-2d c=%-2d  seq %.1fms  unison %.1fms  speedup %.2fx\n",
			s.K, s.Cores, s.SeqVirtualMs, s.UniVirtualMs, s.Speedup)
	}

	rep.scrub()
	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)

	if gate {
		limit := preBaseline.BytesPerFlow / 4
		got := rep.Runs[0].BytesPerFlow
		fmt.Printf("scale-gate: k=8 bytes/flow %d vs pre-overhaul %d (limit %d = baseline/4)\n",
			got, preBaseline.BytesPerFlow, limit)
		if got > limit {
			return fmt.Errorf("k=8 bytes/flow %d exceeds %d (pre-overhaul %d / 4)",
				got, limit, preBaseline.BytesPerFlow)
		}
	}
	return nil
}
