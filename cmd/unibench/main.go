// Command unibench measures the kernel hot path: events/s, ns/op and
// allocation counts for every kernel on the fixed fat-tree workload of the
// kernel micro-benchmarks (bench_test.go), written as BENCH_hotpath.json.
//
// The report embeds the pre-overhaul seed baseline (docs/bench_seed.json)
// next to the fresh numbers so every run carries its own before/after
// comparison — the acceptance gate of the hot-path overhaul reads the
// speedup straight from this file.
//
// Usage:
//
//	unibench [-n 15] [-seed docs/bench_seed.json] [-o BENCH_hotpath.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"unison"
	"unison/internal/core"
	"unison/internal/des"
	"unison/internal/obs"
	"unison/internal/obs/obshttp"
	"unison/internal/pdes"
	"unison/internal/sim"
)

// sample is one kernel's measurement; the field names match
// docs/bench_seed.json so seed and current blocks diff cleanly.
type sample struct {
	EventsPerSec int64 `json:"events_per_sec"`
	NsPerOp      int64 `json:"ns_per_op"`
	BytesPerOp   int64 `json:"bytes_per_op"`
	AllocsPerOp  int64 `json:"allocs_per_op"`
	Iterations   int   `json:"iterations"`
}

type seedFile struct {
	Note    string            `json:"note"`
	Kernels map[string]sample `json:"kernels"`
}

type delta struct {
	EventsSpeedup float64 `json:"events_speedup"`
	AllocsRatio   float64 `json:"allocs_ratio"`
}

type report struct {
	Note       string            `json:"note"`
	Go         string            `json:"go"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Generated  string            `json:"generated"`
	Current    map[string]sample `json:"current"`
	Seed       map[string]sample `json:"seed,omitempty"`
	SeedNote   string            `json:"seed_note,omitempty"`
	Delta      map[string]delta  `json:"delta,omitempty"`
	// RunStats embeds each kernel's final-iteration run summary (stable
	// JSON tags from internal/sim) so a report carries the P/S/M split,
	// not just throughput.
	RunStats map[string]*sim.RunStats `json:"run_stats,omitempty"`
}

// kernelOrder fixes the iteration and report order.
var kernelOrder = []string{"Sequential", "Unison1", "Unison4", "Barrier", "NullMessage", "Hybrid"}

func scenario(seed uint64) *unison.Scenario {
	ft := unison.BuildFatTree(unison.FatTreeK(4, 10*unison.Gbps, 3*unison.Microsecond))
	stop := sim.Time(2 * unison.Millisecond)
	flows := unison.GenerateTraffic(unison.TrafficConfig{
		Seed:         seed,
		Hosts:        ft.Hosts(),
		Sizes:        unison.GRPCCDF(),
		Load:         0.3,
		BisectionBps: ft.BisectionBandwidth(),
		Start:        0,
		End:          stop / 2,
	})
	return unison.NewScenario(ft.Graph, unison.NewECMP(ft.Graph, unison.Hops, seed), unison.ScenarioConfig{
		Seed:   seed,
		NetCfg: unison.DefaultNetConfig(seed),
		TCPCfg: unison.DefaultTCP(),
		StopAt: stop,
		Flows:  flows,
	})
}

func kernels() map[string]func() sim.Kernel {
	ft := unison.BuildFatTree(unison.FatTreeK(4, 10*unison.Gbps, 3*unison.Microsecond))
	manual4 := pdes.FatTreeManual(ft, 4)
	manual2 := pdes.FatTreeManual(ft, 2)
	return map[string]func() sim.Kernel{
		"Sequential":  func() sim.Kernel { return des.New() },
		"Unison1":     func() sim.Kernel { return core.New(core.Config{Threads: 1}) },
		"Unison4":     func() sim.Kernel { return core.New(core.Config{Threads: 4}) },
		"Barrier":     func() sim.Kernel { return &pdes.BarrierKernel{LPOf: manual4} },
		"NullMessage": func() sim.Kernel { return &pdes.NullMessageKernel{LPOf: manual4} },
		"Hybrid": func() sim.Kernel {
			return core.NewHybrid(core.HybridConfig{HostOf: manual2, ThreadsPerHost: 2})
		},
	}
}

// measure runs the kernel n times and reports per-op figures using the
// same allocation counters `go test -benchmem` reads (Mallocs/TotalAlloc).
func measure(n int, mk func() sim.Kernel) (sample, *sim.RunStats, error) {
	// One warm-up run so one-time costs (pools, route caches) don't skew
	// the per-op figures, mirroring testing.B's calibration runs.
	if _, err := mk().Run(scenario(42).Model()); err != nil {
		return sample{}, nil, err
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var events uint64
	var last *sim.RunStats
	for i := 0; i < n; i++ {
		st, err := mk().Run(scenario(42).Model())
		if err != nil {
			return sample{}, nil, err
		}
		events += st.Events
		last = st
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return sample{
		EventsPerSec: int64(float64(events) / elapsed.Seconds()),
		NsPerOp:      elapsed.Nanoseconds() / int64(n),
		BytesPerOp:   int64(after.TotalAlloc-before.TotalAlloc) / int64(n),
		AllocsPerOp:  int64(after.Mallocs-before.Mallocs) / int64(n),
		Iterations:   n,
	}, last, nil
}

func main() {
	var (
		n         = flag.Int("n", 15, "iterations per kernel")
		seedPath  = flag.String("seed", "docs/bench_seed.json", "seed baseline to embed ('' to skip)")
		out       = flag.String("o", "BENCH_hotpath.json", "output report path")
		traceOut  = flag.String("trace", "", "write a Perfetto trace of one probed Unison4 run to this file")
		debugAddr = flag.String("debug-addr", "", "serve /debug/vars and /debug/pprof on this address (e.g. :6060)")
	)
	flag.Parse()
	if *n < 1 {
		fmt.Fprintln(os.Stderr, "unibench: -n must be at least 1")
		os.Exit(2)
	}
	if *debugAddr != "" {
		addr, err := obshttp.Serve(*debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "unibench: debug listener: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("debug http on %s (/debug/vars, /debug/pprof)\n", addr)
	}

	rep := report{
		Note: "Kernel hot-path micro-benchmark: fixed fat-tree k=4 workload of bench_test.go, " +
			"fresh numbers under 'current', pre-overhaul baseline under 'seed'.",
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Current:    make(map[string]sample, len(kernelOrder)),
	}

	if *seedPath != "" {
		raw, err := os.ReadFile(*seedPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "unibench: seed baseline unavailable (%v); reporting current only\n", err)
		} else {
			var sf seedFile
			if err := json.Unmarshal(raw, &sf); err != nil {
				fmt.Fprintf(os.Stderr, "unibench: bad seed baseline: %v\n", err)
				os.Exit(1)
			}
			rep.Seed = sf.Kernels
			rep.SeedNote = sf.Note
		}
	}

	mks := kernels()
	rep.RunStats = make(map[string]*sim.RunStats, len(kernelOrder))
	for _, name := range kernelOrder {
		s, st, err := measure(*n, mks[name])
		if err != nil {
			fmt.Fprintf(os.Stderr, "unibench: %s: %v\n", name, err)
			os.Exit(1)
		}
		st.RoundTrace = nil // keep the report compact
		rep.Current[name] = s
		rep.RunStats[name] = st
		fmt.Printf("%-12s %9d events/s  %9d ns/op  %8d B/op  %6d allocs/op\n",
			name, s.EventsPerSec, s.NsPerOp, s.BytesPerOp, s.AllocsPerOp)
	}

	if rep.Seed != nil {
		rep.Delta = make(map[string]delta, len(rep.Current))
		for name, cur := range rep.Current {
			sd, ok := rep.Seed[name]
			if !ok || sd.EventsPerSec == 0 || sd.AllocsPerOp == 0 {
				continue
			}
			rep.Delta[name] = delta{
				EventsSpeedup: float64(cur.EventsPerSec) / float64(sd.EventsPerSec),
				AllocsRatio:   float64(cur.AllocsPerOp) / float64(sd.AllocsPerOp),
			}
		}
		if d, ok := rep.Delta["Unison4"]; ok {
			fmt.Printf("Unison4 vs seed: %.2fx events/s, %.2fx allocs/op\n", d.EventsSpeedup, d.AllocsRatio)
		}
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "unibench: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "unibench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)

	if *traceOut != "" {
		if err := writeTrace(*traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "unibench: trace: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeTrace runs Unison4 once more with a probe attached and exports the
// round/worker phase timeline as Chrome trace-event JSON (load it at
// https://ui.perfetto.dev). The probed run is outside the measured loop,
// so it never skews the report.
func writeTrace(path string) error {
	reg := obs.NewRegistry(0)
	reg.Publish("unison_last_run")
	if _, err := core.New(core.Config{Threads: 4, Observe: reg}).Run(scenario(42).Model()); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := reg.WritePerfetto(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d round records)\n", path, len(reg.Records()))
	return nil
}
