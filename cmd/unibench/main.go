// Command unibench measures the kernel hot path: events/s, ns/op and
// allocation counts for every kernel on the fixed fat-tree workload of the
// kernel micro-benchmarks (bench_test.go), written as BENCH_hotpath.json.
//
// The report embeds the pre-overhaul seed baseline (docs/bench_seed.json)
// next to the fresh numbers so every run carries its own before/after
// comparison — the acceptance gate of the hot-path overhaul reads the
// speedup straight from this file.
//
// Usage:
//
//	unibench [-n 15] [-seed docs/bench_seed.json] [-o BENCH_hotpath.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"unison"
	"unison/internal/core"
	"unison/internal/des"
	"unison/internal/netobs"
	"unison/internal/obs"
	"unison/internal/obs/live"
	"unison/internal/obs/obshttp"
	"unison/internal/pdes"
	"unison/internal/sim"
	"unison/internal/stats"
)

// sample is one kernel's measurement; the field names match
// docs/bench_seed.json so seed and current blocks diff cleanly.
type sample struct {
	EventsPerSec int64 `json:"events_per_sec"`
	NsPerOp      int64 `json:"ns_per_op"`
	BytesPerOp   int64 `json:"bytes_per_op"`
	AllocsPerOp  int64 `json:"allocs_per_op"`
	Iterations   int   `json:"iterations"`
}

type seedFile struct {
	Note    string            `json:"note"`
	Kernels map[string]sample `json:"kernels"`
}

type delta struct {
	EventsSpeedup float64 `json:"events_speedup"`
	AllocsRatio   float64 `json:"allocs_ratio"`
}

// fidelity is one kernel's simulation-result summary from the final
// iteration: throughput numbers alone can hide a kernel that got fast by
// simulating the wrong thing, so every report carries what the run
// actually produced.
type fidelity struct {
	P50FCTms    float64 `json:"p50_fct_ms"`
	P99FCTms    float64 `json:"p99_fct_ms"`
	Completed   int     `json:"completed"`
	Drops       uint64  `json:"drops"`
	Fingerprint uint64  `json:"fingerprint"`
}

type report struct {
	Note       string            `json:"note"`
	Go         string            `json:"go"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Generated  string            `json:"generated"`
	Current    map[string]sample `json:"current"`        //unison:json-ok keys are the fixed kernelOrder names; encoding/json sorts string keys
	Seed       map[string]sample `json:"seed,omitempty"` //unison:json-ok keys are the fixed kernelOrder names; encoding/json sorts string keys
	SeedNote   string            `json:"seed_note,omitempty"`
	Delta      map[string]delta  `json:"delta,omitempty"` //unison:json-ok keys are the fixed kernelOrder names; encoding/json sorts string keys
	// RunStats embeds each kernel's final-iteration run summary (stable
	// JSON tags from internal/sim) so a report carries the P/S/M split,
	// not just throughput.
	RunStats map[string]*sim.RunStats `json:"run_stats,omitempty"` //unison:json-ok keys are the fixed kernelOrder names; encoding/json sorts string keys
	// Fidelity embeds each kernel's simulated results (percentile FCTs,
	// drops, fingerprint) from the final iteration.
	Fidelity map[string]fidelity `json:"fidelity,omitempty"` //unison:json-ok keys are the fixed kernelOrder names; encoding/json sorts string keys
}

// scrub replaces non-finite floats with 0 so the report encode can never
// fail at run end (e.g. an allocs ratio against a zero-alloc seed).
func (r *report) scrub() {
	for k, d := range r.Delta { //unison:ordered per-key rewrite, each key written independently
		d.EventsSpeedup = finite(d.EventsSpeedup)
		d.AllocsRatio = finite(d.AllocsRatio)
		r.Delta[k] = d
	}
	for k, f := range r.Fidelity { //unison:ordered per-key rewrite, each key written independently
		f.P50FCTms = finite(f.P50FCTms)
		f.P99FCTms = finite(f.P99FCTms)
		r.Fidelity[k] = f
	}
}

// finite maps NaN and ±Inf to 0.
func finite(f float64) float64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return f
}

// kernelOrder fixes the iteration and report order.
var kernelOrder = []string{"Sequential", "Unison1", "Unison4", "Barrier", "NullMessage", "Hybrid"}

// benchScenario is the workload every measurement builds: the historical
// fixed fat-tree k=4 suite by default, or the file passed via -scenario.
// A fresh Sim is built per iteration (Build never mutates the scenario).
var benchScenario *unison.Scenario

func defaultBenchScenario() *unison.Scenario {
	sc := unison.DefaultScenario()
	// The bench workload ends arrivals at stop/2 (not the schema's 3/4
	// default) to stay comparable with the embedded seed baselines.
	sc.Traffic.End = unison.ScenarioDuration(sc.Stop) / 2
	return sc
}

func scenario(seed uint64) *unison.Sim {
	sc := *benchScenario
	sc.Seed = seed
	b, err := sc.Build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "unibench: %v\n", err)
		os.Exit(1)
	}
	return b.Sim
}

// benchProbe is attached to every measured kernel run. It stays nil for
// plain benchmarking; -live-bus sets it to an enabled-but-unattached
// telemetry bus (the overhead the ≤1% gate pins down) and -live to a full
// streaming session.
var benchProbe obs.Probe

func kernels() map[string]func() sim.Kernel {
	b, err := benchScenario.Build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "unibench: %v\n", err)
		os.Exit(1)
	}
	ks := map[string]func() sim.Kernel{
		"Sequential": func() sim.Kernel { return &des.Kernel{Observe: benchProbe} },
		"Unison1":    func() sim.Kernel { return core.New(core.Config{Threads: 1, Observe: benchProbe}) },
		"Unison4":    func() sim.Kernel { return core.New(core.Config{Threads: 4, Observe: benchProbe}) },
	}
	if b.ManualFor != nil {
		manual4, manual2 := b.ManualFor(4), b.ManualFor(2)
		ks["Barrier"] = func() sim.Kernel { return &pdes.BarrierKernel{LPOf: manual4, Observe: benchProbe} }
		ks["NullMessage"] = func() sim.Kernel { return &pdes.NullMessageKernel{LPOf: manual4, Observe: benchProbe} }
		ks["Hybrid"] = func() sim.Kernel {
			return core.NewHybrid(core.HybridConfig{HostOf: manual2, ThreadsPerHost: 2, Observe: benchProbe})
		}
	}
	return ks
}

// measure runs the kernel n times and reports per-op figures using the
// same allocation counters `go test -benchmem` reads (Mallocs/TotalAlloc).
// The final iteration's scenario also yields the fidelity summary; reading
// it after the run costs nothing inside the timed region.
func measure(n int, mk func() sim.Kernel) (sample, *sim.RunStats, fidelity, error) {
	// One warm-up run so one-time costs (pools, route caches) don't skew
	// the per-op figures, mirroring testing.B's calibration runs.
	if _, err := mk().Run(scenario(benchScenario.Seed).Model()); err != nil {
		return sample{}, nil, fidelity{}, err
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var events uint64
	var last *sim.RunStats
	var lastSc *unison.Sim
	for i := 0; i < n; i++ {
		sc := scenario(benchScenario.Seed)
		st, err := mk().Run(sc.Model())
		if err != nil {
			return sample{}, nil, fidelity{}, err
		}
		events += st.Events
		last, lastSc = st, sc
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	fid := fidelity{
		Completed:   lastSc.Mon.Completed(),
		Drops:       lastSc.Net.Drops(),
		Fingerprint: lastSc.Mon.Fingerprint(),
	}
	if fcts := lastSc.Mon.FCTs(); len(fcts) > 0 {
		fid.P50FCTms = stats.Quantile(fcts, 0.50)
		fid.P99FCTms = stats.Quantile(fcts, 0.99)
	}
	return sample{
		EventsPerSec: int64(float64(events) / elapsed.Seconds()),
		NsPerOp:      elapsed.Nanoseconds() / int64(n),
		BytesPerOp:   int64(after.TotalAlloc-before.TotalAlloc) / int64(n),
		AllocsPerOp:  int64(after.Mallocs-before.Mallocs) / int64(n),
		Iterations:   n,
	}, last, fid, nil
}

func main() {
	var (
		n         = flag.Int("n", 15, "iterations per kernel")
		scFile    = flag.String("scenario", "", "declarative scenario file to benchmark instead of the fixed fat-tree workload (JSON, or TOML by extension)")
		seedPath  = flag.String("seed", "docs/bench_seed.json", "seed baseline to embed ('' to skip)")
		out       = flag.String("o", "BENCH_hotpath.json", "output report path")
		traceOut  = flag.String("trace", "", "write a Perfetto trace of one probed Unison4 run to this file")
		artifacts = flag.String("artifacts", "", "write a run-artifact bundle of one observed Unison4 run to this directory")
		gatePath  = flag.String("gate", "", "baseline report (e.g. BENCH_hotpath.json); exit nonzero if Unison4 events/s or allocs/op regresses more than -gate-pct against it")
		gatePct   = flag.Float64("gate-pct", 10, "allowed Unison4 events/s (and allocs/op growth) regression percentage for -gate")
		debugAddr = flag.String("debug-addr", "", "serve /debug/vars and /debug/pprof on this address (e.g. :6060)")
		liveBus   = flag.Bool("live-bus", false, "attach an enabled-but-unattached telemetry bus to every measured run (overhead-gate mode)")
		liveAddr  = flag.String("live", "", "serve live telemetry (JSON + SSE for unimon) on this address during the suite")

		scale        = flag.Bool("scale", false, "run the fat-tree scale benchmark (memory/node, memory/flow, k x cores sweep) instead of the hot-path suite")
		scaleOut     = flag.String("scale-o", "BENCH_scale.json", "scale report output path")
		scaleMaxK    = flag.Int("scale-max-k", 16, "largest fat-tree k to measure (8 for the CI smoke run)")
		scaleThreads = flag.Int("scale-threads", 4, "Unison threads for the live scale runs")
		scaleGate    = flag.Bool("scale-gate", false, "exit nonzero unless k=8 live bytes/flow is at least 4x below the pre-overhaul baseline")

		ckptDir = flag.String("checkpoint", "", "run one Unison4 run (instead of the bench suite) writing crash-consistent snapshots into this directory")
		ckptN   = flag.Uint64("checkpoint-every", 100, "snapshot cadence in synchronization rounds for -checkpoint")
		restore = flag.String("restore", "", "run one Unison4 run (instead of the bench suite) resumed from this snapshot file")
	)
	flag.Parse()
	if *n < 1 {
		fmt.Fprintln(os.Stderr, "unibench: -n must be at least 1")
		os.Exit(2)
	}
	benchScenario = defaultBenchScenario()
	if *scFile != "" {
		sc, err := unison.LoadScenario(*scFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "unibench: %v\n", err)
			os.Exit(2)
		}
		benchScenario = sc
	}
	if *scale {
		if err := runScale(*scaleOut, *scaleMaxK, *scaleThreads, *scaleGate); err != nil {
			fmt.Fprintf(os.Stderr, "unibench: scale: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *ckptDir != "" || *restore != "" {
		if err := runCheckpointed(*ckptDir, *ckptN, *restore); err != nil {
			fmt.Fprintf(os.Stderr, "unibench: checkpoint: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *debugAddr != "" {
		addr, err := obshttp.Serve(*debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "unibench: debug listener: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("debug http on %s (/debug/vars, /debug/pprof)\n", addr)
	}

	var lsess *live.Session
	switch {
	case *liveAddr != "":
		var err error
		lsess, err = live.StartSession("unibench", benchScenario.Stop.T(), *liveAddr, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "unibench: live: %v\n", err)
			os.Exit(1)
		}
		benchProbe = lsess.Probe()
		fmt.Printf("live http://%s/live\n", lsess.Server.Addr())
	case *liveBus:
		// The gate's overhead mode: the bus is in front of every measured
		// run, but nothing subscribes — the cost under test is one atomic
		// load per probe call.
		benchProbe = obs.NewBus(nil)
		fmt.Println("live-bus: telemetry bus attached to measured runs (no watcher)")
	}

	rep := report{
		Note: "Kernel hot-path micro-benchmark: fixed fat-tree k=4 workload of bench_test.go, " +
			"fresh numbers under 'current', pre-overhaul baseline under 'seed'.",
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Current:    make(map[string]sample, len(kernelOrder)),
	}

	if *seedPath != "" {
		raw, err := os.ReadFile(*seedPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "unibench: seed baseline unavailable (%v); reporting current only\n", err)
		} else {
			var sf seedFile
			if err := json.Unmarshal(raw, &sf); err != nil {
				fmt.Fprintf(os.Stderr, "unibench: bad seed baseline: %v\n", err)
				os.Exit(1)
			}
			rep.Seed = sf.Kernels
			rep.SeedNote = sf.Note
		}
	}

	mks := kernels()
	rep.RunStats = make(map[string]*sim.RunStats, len(kernelOrder))
	rep.Fidelity = make(map[string]fidelity, len(kernelOrder))
	var lastSt *sim.RunStats
	for _, name := range kernelOrder {
		if mks[name] == nil {
			continue // no manual-partition recipe for this scenario's topology
		}
		s, st, fid, err := measure(*n, mks[name])
		if err != nil {
			fmt.Fprintf(os.Stderr, "unibench: %s: %v\n", name, err)
			os.Exit(1)
		}
		st.RoundTrace = nil // keep the report compact
		rep.Current[name] = s
		rep.RunStats[name] = st
		rep.Fidelity[name] = fid
		lastSt = st
		fmt.Printf("%-12s %9d events/s  %9d ns/op  %8d B/op  %6d allocs/op  p50 %.3fms p99 %.3fms drops %d\n",
			name, s.EventsPerSec, s.NsPerOp, s.BytesPerOp, s.AllocsPerOp,
			fid.P50FCTms, fid.P99FCTms, fid.Drops)
	}
	if lsess != nil {
		// The suite's final kernel provides the "final" snapshot (each
		// BeginRun resets the live view, so the last one is current); the
		// imbalance pass stamps it before the report serializes.
		lsess.Finish(lastSt)
		defer lsess.Close()
	}

	if rep.Seed != nil {
		rep.Delta = make(map[string]delta, len(rep.Current))
		for name, cur := range rep.Current {
			sd, ok := rep.Seed[name]
			if !ok || sd.EventsPerSec == 0 || sd.AllocsPerOp == 0 {
				continue
			}
			rep.Delta[name] = delta{
				EventsSpeedup: float64(cur.EventsPerSec) / float64(sd.EventsPerSec),
				AllocsRatio:   float64(cur.AllocsPerOp) / float64(sd.AllocsPerOp),
			}
		}
		if d, ok := rep.Delta["Unison4"]; ok {
			fmt.Printf("Unison4 vs seed: %.2fx events/s, %.2fx allocs/op\n", d.EventsSpeedup, d.AllocsRatio)
		}
	}

	rep.scrub()
	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "unibench: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "unibench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)

	if *traceOut != "" {
		if err := writeTrace(*traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "unibench: trace: %v\n", err)
			os.Exit(1)
		}
	}
	if *artifacts != "" {
		if err := writeArtifacts(*artifacts); err != nil {
			fmt.Fprintf(os.Stderr, "unibench: artifacts: %v\n", err)
			os.Exit(1)
		}
	}
	if *gatePath != "" {
		if err := gate(*gatePath, *gatePct, rep.Current); err != nil {
			fmt.Fprintf(os.Stderr, "unibench: gate: %v\n", err)
			os.Exit(1)
		}
	}
}

// gate compares the fresh Unison4 throughput against a baseline report
// and fails on a regression beyond pct percent — the CI bench smoke gate.
// The measured runs are probe-disabled, so this also pins the cost of the
// observability hooks at (near) zero when nothing is attached.
func gate(path string, pct float64, current map[string]sample) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("bad baseline %s: %w", path, err)
	}
	b, ok := base.Current["Unison4"]
	if !ok || b.EventsPerSec == 0 {
		return fmt.Errorf("baseline %s has no Unison4 events/s", path)
	}
	cur := current["Unison4"]
	change := 100 * (float64(cur.EventsPerSec)/float64(b.EventsPerSec) - 1)
	fmt.Printf("gate: Unison4 %d events/s vs baseline %d (%+.1f%%, threshold -%.0f%%)\n",
		cur.EventsPerSec, b.EventsPerSec, change, pct)
	if change < -pct {
		return fmt.Errorf("Unison4 events/s regressed %.1f%% (limit %.0f%%)", -change, pct)
	}
	if b.AllocsPerOp > 0 {
		growth := 100 * (float64(cur.AllocsPerOp)/float64(b.AllocsPerOp) - 1)
		fmt.Printf("gate: Unison4 %d allocs/op vs baseline %d (%+.1f%%, threshold +%.0f%%)\n",
			cur.AllocsPerOp, b.AllocsPerOp, growth, pct)
		if growth > pct {
			return fmt.Errorf("Unison4 allocs/op grew %.1f%% (limit %.0f%%)", growth, pct)
		}
	}
	return nil
}

// ckptProbe collects the per-snapshot telemetry EnableCheckpoints emits.
type ckptProbe struct{ recs []unison.RoundRecord }

func (p *ckptProbe) BeginRun(unison.RunMeta)         {}
func (p *ckptProbe) OnRound(rec *unison.RoundRecord) { p.recs = append(p.recs, *rec) }
func (p *ckptProbe) EndRun(*sim.RunStats)            {}

// runCheckpointed runs the bench scenario once under Unison4, either
// writing snapshots (dir != "") or resuming from one (restorePath != ""),
// and prints the outcome — the fingerprint lets a resumed run be checked
// against an uninterrupted one by eye.
func runCheckpointed(dir string, every uint64, restorePath string) error {
	sc := scenario(benchScenario.Seed)
	m := sc.Model()
	probe := &ckptProbe{}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		unison.EnableCheckpoints(m, sc.CkptTarget(), dir, every, 0, probe)
	}
	if restorePath != "" {
		if err := unison.RestoreCheckpoint(m, sc.CkptTarget(), restorePath); err != nil {
			return err
		}
	}
	st, err := core.New(core.Config{Threads: 4}).Run(m)
	if err != nil {
		return err
	}
	for _, rec := range probe.recs {
		fmt.Printf("checkpoint round %-6d  %8d B  %.2f ms  -> %s\n",
			rec.Round, rec.CkptBytes, float64(rec.CkptNS)/1e6, unison.CheckpointPath(dir, rec.Round))
	}
	fmt.Printf("%s: %d events in %d rounds, %d flows completed, fingerprint %016x\n",
		st.Kernel, st.Events, st.Rounds, sc.Mon.Completed(), sc.Mon.Fingerprint())
	return nil
}

// writeArtifacts runs Unison4 once with the full observability stack
// attached and materializes the run-artifact bundle. Like writeTrace, the
// observed run happens outside the measured loop.
func writeArtifacts(dir string) error {
	sc := scenario(benchScenario.Seed)
	tracer, sampler := sc.EnableNetObs(0, 0)
	reg := obs.NewRegistry(0)
	st, err := core.New(core.Config{Threads: 4, Observe: reg}).Run(sc.Model())
	if err != nil {
		return err
	}
	sampler.Flush()
	bw := benchScenario.Topology.BwGbps
	if bw <= 0 {
		bw = 10
	}
	b := &netobs.Bundle{
		Meta: netobs.Meta{
			Tool: "unibench", Kernel: st.Kernel, Topology: benchScenario.Topology.Kind,
			Seed: benchScenario.Seed, Workers: 4, StopNS: int64(benchScenario.Stop),
			Flows: sc.Mon.Flows(),
		},
		Stats:        st,
		Mon:          sc.Mon,
		RefBandwidth: int64(bw * 1e9),
		Rows:         sampler.Rows(),
		Interval:     sampler.Interval(),
		Trace:        tracer.Merged(),
		KernelMeta:   reg.Meta(),
		KernelRecs:   reg.Records(),
	}
	if cr := sc.CollReport(sc.Mon); cr != nil {
		b.Coll = cr
	}
	files, err := b.Write(dir)
	if err != nil {
		return err
	}
	fmt.Printf("wrote artifact bundle %s (%v)\n", dir, files)
	return nil
}

// writeTrace runs Unison4 once more with a probe attached and exports the
// round/worker phase timeline as Chrome trace-event JSON (load it at
// https://ui.perfetto.dev). The probed run is outside the measured loop,
// so it never skews the report.
func writeTrace(path string) error {
	reg := obs.NewRegistry(0)
	reg.Publish("unison_last_run")
	if _, err := core.New(core.Config{Threads: 4, Observe: reg}).Run(scenario(benchScenario.Seed).Model()); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := reg.WritePerfetto(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d round records)\n", path, len(reg.Records()))
	return nil
}
